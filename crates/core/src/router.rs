//! The router core: strategy-driven tuple distribution with sequence
//! stamping and punctuation emission.
//!
//! Routers are stateless with respect to stream *content* (they keep no
//! window data) — all they own is a monotone sequence counter and a seeded
//! RNG for random placement. That is why the router tier scales trivially
//! (competing consumers on the ingest queue) and why recovering a router
//! is cheap in the real systems.

use crate::adaptive::AdaptiveRouter;
use crate::config::RoutingStrategy;
use crate::layout::{JoinerId, Layout};
use bistream_types::audit::Auditor;
use bistream_types::batch::{BatchMessage, TupleBatch};
use bistream_types::error::{Error, Result};
use bistream_types::hash::{bucket_of, hash_one, FxHashMap};
use bistream_types::metrics::{Counter, Gauge, Histogram, RateMeter};
use bistream_types::predicate::JoinPredicate;
use bistream_types::punct::{Punctuation, Purpose, RouterId, SeqNo, StreamMessage};
use bistream_types::registry::MetricsRegistry;
use bistream_types::trace::{HopKind, Tracer};
use bistream_types::tuple::Tuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One message addressed to one joiner unit.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCopy {
    /// Destination unit.
    pub dest: JoinerId,
    /// The message to deliver.
    pub msg: StreamMessage,
}

/// One batched frame addressed to one joiner unit — what the micro-batched
/// dataflow moves instead of [`RoutedCopy`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedBatch {
    /// Destination unit.
    pub dest: JoinerId,
    /// The frame to deliver.
    pub msg: BatchMessage,
}

/// Communication-cost counters (experiment E11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RouterStats {
    /// Tuples ingested and routed.
    pub tuples: u64,
    /// Data copies emitted (store + join).
    pub copies: u64,
    /// Punctuation messages emitted.
    pub punctuations: u64,
}

impl RouterStats {
    /// Mean data copies per routed tuple.
    pub fn copies_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.copies as f64 / self.tuples as f64
        }
    }
}

/// Stable label value for a routing strategy.
fn strategy_label(strategy: RoutingStrategy) -> &'static str {
    match strategy {
        RoutingStrategy::Random => "random",
        RoutingStrategy::Hash => "hash",
        RoutingStrategy::ContRand { .. } => "contrand",
        RoutingStrategy::Adaptive { .. } => "adaptive",
    }
}

/// Registry-backed series of one router, labeled `router="r<id>"`.
///
/// Per-destination copy counters are created lazily the first time a
/// destination is hit (layouts grow at runtime), and the route-decision
/// counter is re-resolved when the strategy changes so decisions are
/// attributed to the strategy that made them.
#[derive(Debug)]
struct RouterMetrics {
    registry: MetricsRegistry,
    label: String,
    tuples: Arc<Counter>,
    copies: Arc<Counter>,
    punctuations: Arc<Counter>,
    /// `bistream_router_route_decisions_total{router,strategy}` for the
    /// *current* strategy.
    decisions: Arc<Counter>,
    /// `bistream_router_rate_tps{router}` — observed input rate.
    rate_tps: Arc<Gauge>,
    /// `bistream_batch_size{router}` — entries per flushed batch frame.
    batch_len: Arc<Histogram>,
    /// `bistream_router_pending_copies{router}` — copies buffered in
    /// unflushed batches (the router-side backpressure signal).
    pending_copies: Arc<Gauge>,
    /// `bistream_router_hot_keys{router}` — hot-tier size of the adaptive
    /// store plan (0 under the static strategies).
    hot_keys: Arc<Gauge>,
    /// `bistream_router_adaptive_subgroups{router}` — cold-tier `d` of
    /// the adaptive store plan.
    adaptive_subgroups: Arc<Gauge>,
    /// `bistream_router_strategy_switches_total{router}` — fenced plan
    /// adoptions this router performed.
    strategy_switches: Arc<Counter>,
    per_dest: FxHashMap<JoinerId, Arc<Counter>>,
}

impl RouterMetrics {
    fn new(registry: &MetricsRegistry, id: RouterId, strategy: RoutingStrategy) -> RouterMetrics {
        let label = format!("r{id}");
        let labels: &[(&str, &str)] = &[("router", &label)];
        RouterMetrics {
            tuples: registry.counter(bistream_types::metric_names::ROUTER_TUPLES_TOTAL, labels),
            copies: registry.counter(bistream_types::metric_names::ROUTER_COPIES_TOTAL, labels),
            punctuations: registry
                .counter(bistream_types::metric_names::ROUTER_PUNCTUATIONS_TOTAL, labels),
            decisions: Self::decisions_handle(registry, &label, strategy),
            rate_tps: registry.gauge(bistream_types::metric_names::ROUTER_RATE_TPS, labels),
            batch_len: registry.histogram(bistream_types::metric_names::BATCH_SIZE, labels),
            pending_copies: registry
                .gauge(bistream_types::metric_names::ROUTER_PENDING_COPIES, labels),
            hot_keys: registry.gauge(bistream_types::metric_names::ROUTER_HOT_KEYS, labels),
            adaptive_subgroups: registry
                .gauge(bistream_types::metric_names::ROUTER_ADAPTIVE_SUBGROUPS, labels),
            strategy_switches: registry
                .counter(bistream_types::metric_names::ROUTER_STRATEGY_SWITCHES_TOTAL, labels),
            per_dest: FxHashMap::default(),
            registry: registry.clone(),
            label,
        }
    }

    fn decisions_handle(
        registry: &MetricsRegistry,
        label: &str,
        strategy: RoutingStrategy,
    ) -> Arc<Counter> {
        registry.counter(
            bistream_types::metric_names::ROUTER_ROUTE_DECISIONS_TOTAL,
            &[("router", label), ("strategy", strategy_label(strategy))],
        )
    }

    fn bump_dest(&mut self, dest: JoinerId) {
        let router_label = &self.label;
        let registry = &self.registry;
        self.per_dest
            .entry(dest)
            .or_insert_with(|| {
                registry.counter(
                    bistream_types::metric_names::ROUTER_DEST_COPIES_TOTAL,
                    &[("router", router_label), ("dest", &dest.to_string())],
                )
            })
            .inc();
    }
}

/// The routing state machine of one router instance.
///
/// All routers of one engine share a single atomic sequence counter — this
/// is what makes the order-consistent protocol's sequence truly *global*
/// (Definition 7's `Z`). With per-router counters, a joiner's watermark
/// (the minimum punctuation frontier across routers) would be pinned to
/// the slowest router's private counter, stranding the faster routers'
/// tails in the reorder buffers; with a shared counter, every router's
/// punctuation reports the same clock and the watermark tracks the stream.
#[derive(Debug)]
pub struct RouterCore {
    id: RouterId,
    strategy: RoutingStrategy,
    predicate: JoinPredicate,
    seq: Arc<AtomicU64>,
    rng: StdRng,
    stats: RouterStats,
    /// Input-rate statistics (the thesis assigns routers "statistics
    /// related to input data, such as rate of events per second").
    rate: RateMeter,
    /// Registry-backed series, present once a registry is attached.
    metrics: Option<RouterMetrics>,
    /// Per-tuple tracer (disabled by default). The router is the trace's
    /// ingress: it opens the trace with the copy fan-out as the branch
    /// count and records the route hop.
    tracer: Tracer,
    /// Flush threshold of the batched path (1 = per-tuple framing).
    batch_size: usize,
    /// Per-(destination, purpose) batches accumulating towards a flush.
    /// Keyed by purpose as well as destination because one unit can
    /// receive both store and join copies from this router, and a
    /// [`TupleBatch`] carries exactly one purpose.
    pending: FxHashMap<(JoinerId, Purpose), TupleBatch>,
    /// Invariant auditor (test/debug harnesses): checks sequence density
    /// and punctuation monotonicity at the assignment point.
    auditor: Option<Auditor>,
    /// Skew-adaptive routing state ([`crate::adaptive`]); required when
    /// the strategy is [`RoutingStrategy::Adaptive`], ignored otherwise.
    adaptive: Option<AdaptiveRouter>,
}

impl RouterCore {
    /// A router with the given identity, strategy and placement seed,
    /// drawing sequence numbers from the engine-shared `seq` counter.
    pub fn new(
        id: RouterId,
        strategy: RoutingStrategy,
        predicate: JoinPredicate,
        seed: u64,
        seq: Arc<AtomicU64>,
    ) -> RouterCore {
        RouterCore {
            id,
            strategy,
            predicate,
            seq,
            rng: StdRng::seed_from_u64(seed ^ ((id as u64) << 32)),
            stats: RouterStats::default(),
            rate: RateMeter::new(10),
            metrics: None,
            tracer: Tracer::disabled(),
            batch_size: 1,
            pending: FxHashMap::default(),
            auditor: None,
            adaptive: None,
        }
    }

    /// Attach the per-router handle of the engine-wide
    /// [`crate::adaptive::AdaptiveShared`] state. Required before routing
    /// under [`RoutingStrategy::Adaptive`].
    pub fn attach_adaptive(&mut self, handle: AdaptiveRouter) {
        self.adaptive = Some(handle);
    }

    /// The attached adaptive state, if any (test/metrics introspection).
    pub fn adaptive(&self) -> Option<&AdaptiveRouter> {
        self.adaptive.as_ref()
    }

    /// Test-only: arm the fence-skipping bug hook on the attached
    /// adaptive state (see [`AdaptiveRouter::debug_unfenced_adopt`]).
    pub fn debug_skip_fence(&mut self, on: bool) {
        if let Some(ad) = self.adaptive.as_mut() {
            ad.set_skip_fence(on);
        }
    }

    /// Attach the invariant [`Auditor`]: every sequence assignment and
    /// punctuation this router makes is then checked for density,
    /// global uniqueness and monotonicity (the premises of Definition 7).
    pub fn set_auditor(&mut self, auditor: Auditor) {
        self.auditor = Some(auditor);
    }

    /// Set the micro-batch flush threshold (clamped to at least 1). With
    /// size 1 every copy flushes immediately — per-tuple framing.
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch_size = n.max(1).min(bistream_types::batch::MAX_BATCH_LEN);
    }

    /// The current flush threshold.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Tuple copies sitting in unflushed per-destination batches.
    pub fn pending_batched(&self) -> usize {
        self.pending.values().map(|b| b.len()).sum()
    }

    /// Register this router's metric series (labeled `router="r<id>"`)
    /// in `registry` and keep them current from the routing hot path.
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(RouterMetrics::new(registry, self.id, self.strategy));
    }

    /// Attach a per-tuple tracer: sampled tuples get a trace opened at
    /// routing time (this is where the sequence number — the trace id — is
    /// minted), with one branch per emitted copy.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Convenience constructor for single-router setups and tests: a
    /// private sequence counter.
    pub fn standalone(
        id: RouterId,
        strategy: RoutingStrategy,
        predicate: JoinPredicate,
        seed: u64,
    ) -> RouterCore {
        Self::new(id, strategy, predicate, seed, Arc::new(AtomicU64::new(0)))
    }

    /// This router's identity.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// The latest sequence number visible on the shared counter. Used as
    /// the punctuation value: every tuple this router has routed carries a
    /// sequence ≤ this, and every future one will carry a greater one.
    pub fn last_seq(&self) -> SeqNo {
        self.seq.load(Ordering::SeqCst)
    }

    /// Communication counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Handle on the (shared) sequence counter — used by the engine to
    /// mint additional routers against the same clock.
    pub fn seq_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.seq)
    }

    /// Switch routing strategy (subgroup adjustment changes ContRand's
    /// `d` at runtime). Takes effect for the next routed tuple.
    pub fn set_strategy(&mut self, strategy: RoutingStrategy) {
        self.strategy = strategy;
        if let Some(m) = self.metrics.as_mut() {
            m.decisions = RouterMetrics::decisions_handle(&m.registry, &m.label, strategy);
        }
    }

    /// This router's observed input rate (tuples/second, 10 s window
    /// ending at `now_ms` of the tuple timebase).
    pub fn observed_rate(&self, now_ms: u64) -> f64 {
        self.rate.rate_per_sec(now_ms)
    }

    /// Route one ingested tuple against the current layout, appending the
    /// store copy and all join copies to `out`.
    ///
    /// Every copy of the tuple carries the same freshly assigned sequence
    /// number; the store copy is emitted first (an arbitrary but fixed
    /// order — ordering across units is the reorder buffer's job).
    pub fn route(
        &mut self,
        tuple: &Tuple,
        layout: &Layout,
        out: &mut Vec<RoutedCopy>,
    ) -> Result<()> {
        let own = tuple.rel();
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(a) = &self.auditor {
            a.router_emit(self.id, seq);
        }
        self.stats.tuples += 1;
        self.rate.record(tuple.ts());

        let store_dest: JoinerId = match self.strategy {
            RoutingStrategy::Random => {
                let own_units = layout.units(own);
                own_units[self.rng.gen_range(0..own_units.len())]
            }
            RoutingStrategy::Hash => {
                let h = self.key_hash(tuple)?;
                let own_units = layout.units(own);
                own_units[bucket_of(h, own_units.len())]
            }
            RoutingStrategy::ContRand { subgroups } => {
                let h = self.key_hash(tuple)?;
                let g = bucket_of(h, subgroups);
                let own_group: Vec<JoinerId> = layout.subgroup_units(own, g).collect();
                if own_group.is_empty() {
                    return Err(Error::Config(format!("subgroup {g} of side {own} is empty")));
                }
                own_group[self.rng.gen_range(0..own_group.len())]
            }
            RoutingStrategy::Adaptive { .. } => {
                let h = self.key_hash(tuple)?;
                let Some(ad) = self.adaptive.as_mut() else {
                    return Err(Error::Config(
                        "adaptive routing requires an attached core::adaptive state".into(),
                    ));
                };
                if ad.fence_skipped() {
                    ad.debug_unfenced_adopt();
                }
                ad.observe(h);
                ad.store_dest(layout, own, h, &mut self.rng)?
            }
        };
        let join_dests = self.join_dests_for(tuple, layout)?;

        if let Some(m) = self.metrics.as_mut() {
            m.tuples.inc();
            m.decisions.inc();
            m.copies.add(1 + join_dests.len() as u64);
            m.rate_tps.set(self.rate.rate_per_sec(tuple.ts()).round() as u64);
            m.bump_dest(store_dest);
            for dest in &join_dests {
                m.bump_dest(*dest);
            }
        }

        if self.tracer.sampled(seq) {
            self.tracer.begin(seq, 1 + join_dests.len() as u32);
            let unit = format!("r{}", self.id);
            self.tracer.span(seq, HopKind::Route, &unit, tuple.ts(), tuple.ts());
        }

        out.push(RoutedCopy {
            dest: store_dest,
            msg: StreamMessage::Data {
                router: self.id,
                seq,
                purpose: Purpose::Store,
                tuple: tuple.clone(),
            },
        });
        self.stats.copies += 1;
        for dest in join_dests {
            out.push(RoutedCopy {
                dest,
                msg: StreamMessage::Data {
                    router: self.id,
                    seq,
                    purpose: Purpose::Join,
                    tuple: tuple.clone(),
                },
            });
            self.stats.copies += 1;
        }
        Ok(())
    }

    /// Emit a punctuation carrying the current counter to every unit of
    /// both sides (joiners must hear from every router to advance their
    /// watermark, even units this router never sent data to).
    pub fn punctuate(&mut self, layout: &Layout, out: &mut Vec<RoutedCopy>) {
        let p = Punctuation { router: self.id, seq: self.last_seq() };
        if let Some(a) = &self.auditor {
            a.router_punct(self.id, p.seq);
        }
        for (_, dest) in layout.all_units() {
            out.push(RoutedCopy { dest, msg: StreamMessage::Punct(p) });
            self.stats.punctuations += 1;
            if let Some(m) = &self.metrics {
                m.punctuations.inc();
            }
        }
        // The punctuation fence: every copy routed so far is emitted and
        // covered, so the adaptive state may now ack/adopt plan switches.
        self.adaptive_tick();
    }

    /// Route one ingested tuple through the micro-batched path: assign the
    /// sequence number and destinations exactly as [`RouterCore::route`]
    /// does (same RNG draws, same counters), but append each copy to a
    /// per-(destination, purpose) [`TupleBatch`] instead of emitting it.
    /// Batches that reach the flush threshold are appended to `out` as
    /// ready-to-send frames; the rest wait for more copies or for the next
    /// [`RouterCore::punctuate_batched`].
    ///
    /// `extras` are additional join destinations the caller derived from
    /// scaling transitions (historical layouts, draining units); they ride
    /// in the same batches under the same sequence stamp. Returns the
    /// assigned sequence number.
    pub fn route_batched(
        &mut self,
        tuple: &Tuple,
        layout: &Layout,
        extras: &[JoinerId],
        out: &mut Vec<RoutedBatch>,
    ) -> Result<SeqNo> {
        let own = tuple.rel();
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(a) = &self.auditor {
            a.router_emit(self.id, seq);
        }
        self.stats.tuples += 1;
        self.rate.record(tuple.ts());

        let store_dest: JoinerId = match self.strategy {
            RoutingStrategy::Random => {
                let own_units = layout.units(own);
                own_units[self.rng.gen_range(0..own_units.len())]
            }
            RoutingStrategy::Hash => {
                let h = self.key_hash(tuple)?;
                let own_units = layout.units(own);
                own_units[bucket_of(h, own_units.len())]
            }
            RoutingStrategy::ContRand { subgroups } => {
                let h = self.key_hash(tuple)?;
                let g = bucket_of(h, subgroups);
                let own_group: Vec<JoinerId> = layout.subgroup_units(own, g).collect();
                if own_group.is_empty() {
                    return Err(Error::Config(format!("subgroup {g} of side {own} is empty")));
                }
                own_group[self.rng.gen_range(0..own_group.len())]
            }
            RoutingStrategy::Adaptive { .. } => {
                let h = self.key_hash(tuple)?;
                let Some(ad) = self.adaptive.as_mut() else {
                    return Err(Error::Config(
                        "adaptive routing requires an attached core::adaptive state".into(),
                    ));
                };
                if ad.fence_skipped() {
                    ad.debug_unfenced_adopt();
                }
                ad.observe(h);
                ad.store_dest(layout, own, h, &mut self.rng)?
            }
        };
        let join_dests = self.join_dests_for(tuple, layout)?;

        // Extras are engine-level copies: they count towards the engine's
        // copy total (the caller's job) but, as in the per-tuple path,
        // not towards this router's own communication counters.
        if let Some(m) = self.metrics.as_mut() {
            m.tuples.inc();
            m.decisions.inc();
            m.copies.add(1 + join_dests.len() as u64);
            m.rate_tps.set(self.rate.rate_per_sec(tuple.ts()).round() as u64);
            m.bump_dest(store_dest);
            for dest in &join_dests {
                m.bump_dest(*dest);
            }
        }

        if self.tracer.sampled(seq) {
            self.tracer.begin(seq, (1 + join_dests.len() + extras.len()) as u32);
            let unit = format!("r{}", self.id);
            self.tracer.span(seq, HopKind::Route, &unit, tuple.ts(), tuple.ts());
        }

        self.push_pending(store_dest, Purpose::Store, seq, tuple.clone(), out);
        self.stats.copies += 1;
        for dest in join_dests {
            self.push_pending(dest, Purpose::Join, seq, tuple.clone(), out);
            self.stats.copies += 1;
        }
        for &dest in extras {
            self.push_pending(dest, Purpose::Join, seq, tuple.clone(), out);
        }
        Ok(seq)
    }

    /// Append one copy to its destination batch, flushing the batch into
    /// `out` when it reaches the threshold.
    fn push_pending(
        &mut self,
        dest: JoinerId,
        purpose: Purpose,
        seq: SeqNo,
        tuple: Tuple,
        out: &mut Vec<RoutedBatch>,
    ) {
        let router = self.id;
        let cap = self.batch_size;
        let batch = self
            .pending
            .entry((dest, purpose))
            .or_insert_with(|| TupleBatch::with_capacity(router, purpose, cap));
        batch.push(seq, tuple);
        let full = if batch.len() >= cap {
            // Swap a fresh batch in rather than remove-and-reinsert; the
            // leftover empty batch is skipped by flush_batches.
            Some(std::mem::replace(batch, TupleBatch::with_capacity(router, purpose, cap)))
        } else {
            None
        };
        if let Some(m) = &self.metrics {
            m.pending_copies.add(1);
            if let Some(full) = &full {
                m.batch_len.record(full.len() as u64);
                m.pending_copies.sub(full.len() as u64);
            }
        }
        if let Some(full) = full {
            out.push(RoutedBatch { dest, msg: BatchMessage::Batch(full) });
        }
    }

    /// Flush every pending batch into `out`, in deterministic
    /// `(destination, purpose)` order. Called before punctuating (a
    /// punctuation must not overtake the data it covers) and at the end of
    /// an ingest burst.
    pub fn flush_batches(&mut self, out: &mut Vec<RoutedBatch>) {
        let mut keys: Vec<(JoinerId, Purpose)> = self.pending.keys().copied().collect();
        keys.sort_by_key(|&(d, p)| (d, p.as_byte()));
        for key in keys {
            let Some(batch) = self.pending.remove(&key) else { continue };
            if batch.is_empty() {
                continue;
            }
            if let Some(m) = &self.metrics {
                m.batch_len.record(batch.len() as u64);
                m.pending_copies.sub(batch.len() as u64);
            }
            out.push(RoutedBatch { dest: key.0, msg: BatchMessage::Batch(batch) });
        }
    }

    /// Batched-path punctuation: flush all pending batches first (per-
    /// channel FIFO then guarantees every covered copy precedes the
    /// punctuation), then emit one punctuation frame to every unit of both
    /// sides.
    pub fn punctuate_batched(&mut self, layout: &Layout, out: &mut Vec<RoutedBatch>) {
        self.flush_batches(out);
        let p = Punctuation { router: self.id, seq: self.last_seq() };
        if let Some(a) = &self.auditor {
            a.router_punct(self.id, p.seq);
        }
        for (_, dest) in layout.all_units() {
            out.push(RoutedBatch { dest, msg: BatchMessage::Punct(p) });
            self.stats.punctuations += 1;
            if let Some(m) = &self.metrics {
                m.punctuations.inc();
            }
        }
        // The punctuation fence: pending batches are flushed and the
        // punctuation emitted, so the adaptive state may now ack/adopt
        // plan switches without reordering any channel.
        self.adaptive_tick();
    }

    fn key_hash(&self, tuple: &Tuple) -> Result<u64> {
        key_hash(&self.predicate, tuple)
    }

    /// The join-stream destinations this router would choose for `tuple`
    /// right now. For the static strategies this is the pure
    /// [`join_dests`] function; under [`RoutingStrategy::Adaptive`] it is
    /// the probe union of every plan that may still hold live tuples, so
    /// the engine must ask the *routing* router rather than re-deriving
    /// destinations itself.
    pub fn planned_join_dests(&self, tuple: &Tuple, layout: &Layout) -> Result<Vec<JoinerId>> {
        self.join_dests_for(tuple, layout)
    }

    fn join_dests_for(&self, tuple: &Tuple, layout: &Layout) -> Result<Vec<JoinerId>> {
        match self.strategy {
            RoutingStrategy::Adaptive { .. } => {
                let h = self.key_hash(tuple)?;
                let Some(ad) = self.adaptive.as_ref() else {
                    return Err(Error::Config(
                        "adaptive routing requires an attached core::adaptive state".into(),
                    ));
                };
                Ok(ad.join_dests(layout, tuple.rel().opposite(), h))
            }
            s => join_dests(s, &self.predicate, tuple, layout),
        }
    }

    /// Run the adaptive punctuation-tick (sketch merge, switch
    /// ack/commit/adopt, tuning) and publish the outcome to this router's
    /// metric series. Must be called only at a fence: after the pending
    /// batches are flushed and the punctuation is emitted.
    fn adaptive_tick(&mut self) {
        let Some(ad) = self.adaptive.as_mut() else { return };
        if !matches!(self.strategy, RoutingStrategy::Adaptive { .. }) {
            return;
        }
        let report = ad.tick();
        if let Some(m) = self.metrics.as_mut() {
            m.hot_keys.set(report.hot_len as u64);
            m.adaptive_subgroups.set(report.subgroups as u64);
            if report.adopted {
                m.strategy_switches.inc();
            }
        }
    }
}

fn key_hash(predicate: &JoinPredicate, tuple: &Tuple) -> Result<u64> {
    let key = predicate.routing_key(tuple).ok_or_else(|| {
        Error::Config(format!(
            "content-sensitive routing needs an equi key; predicate is {predicate}"
        ))
    })?;
    Ok(hash_one(key))
}

/// Capped exponential backoff for router→joiner retransmission.
///
/// Delays are measured in *scheduler steps* (the chaos net's logical
/// clock), never wall time, so retry behaviour replays deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in steps.
    pub base_steps: u64,
    /// Upper bound on any retry delay, in steps.
    pub cap_steps: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy { base_steps: 1, cap_steps: 16 }
    }
}

impl BackoffPolicy {
    /// Delay before attempt number `attempt` (0-based): `base << attempt`,
    /// capped at `cap_steps`.
    pub fn delay(&self, attempt: u32) -> u64 {
        if attempt >= 63 {
            self.cap_steps
        } else {
            (self.base_steps << attempt).min(self.cap_steps)
        }
    }
}

/// Per-channel retransmission state.
#[derive(Debug)]
struct ChannelRetry {
    frames: std::collections::VecDeque<BatchMessage>,
    /// Consecutive refusals since the last accepted frame.
    attempts: u32,
    /// Step at or after which the head frame may be re-offered.
    next_attempt_step: u64,
}

/// Frames refused by a partitioned channel, waiting for retransmission
/// with capped exponential backoff.
///
/// The queue preserves pairwise FIFO: once a channel holds a refused
/// frame, every later frame for that channel must be appended *behind* it
/// (see [`RetryQueue::has_pending`]) rather than sent directly, otherwise
/// retransmission would reorder the channel. Loss in the fault model is
/// exactly "unbounded delay + retry": a frame is never dropped, only
/// deferred until the partition heals.
#[derive(Debug, Default)]
pub struct RetryQueue {
    policy: BackoffPolicy,
    channels: Vec<((RouterId, JoinerId), ChannelRetry)>,
}

impl RetryQueue {
    /// An empty queue with the given backoff policy.
    pub fn new(policy: BackoffPolicy) -> RetryQueue {
        RetryQueue { policy, channels: Vec::new() }
    }

    /// True when the `router → dest` channel has undelivered frames (the
    /// sender must then append behind them instead of sending directly).
    pub fn has_pending(&self, router: RouterId, dest: JoinerId) -> bool {
        self.channels.iter().any(|((r, d), c)| *r == router && *d == dest && !c.frames.is_empty())
    }

    /// Total frames awaiting retransmission.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|(_, c)| c.frames.len()).sum()
    }

    /// Append a refused (or FIFO-deferred) frame for `router → dest`,
    /// scheduling its first retry from `now_step`.
    pub fn push(&mut self, router: RouterId, dest: JoinerId, msg: BatchMessage, now_step: u64) {
        let key = (router, dest);
        match self.channels.iter_mut().find(|(k, _)| *k == key) {
            Some((_, c)) => c.frames.push_back(msg),
            None => {
                let mut frames = std::collections::VecDeque::new();
                frames.push_back(msg);
                self.channels.push((
                    key,
                    ChannelRetry {
                        frames,
                        attempts: 0,
                        next_attempt_step: now_step + self.policy.delay(0),
                    },
                ));
            }
        }
    }

    /// Earliest step at which any channel is due for a retry, or `None`
    /// when the queue is empty. Lets a scheduler fast-forward its step
    /// counter instead of spinning.
    pub fn earliest_due(&self) -> Option<u64> {
        self.channels
            .iter()
            .filter(|(_, c)| !c.frames.is_empty())
            .map(|(_, c)| c.next_attempt_step)
            .min()
    }

    /// Re-offer every due channel's frames, head first, through
    /// `try_send`. A channel drains until `try_send` refuses; a refusal
    /// bumps its attempt counter and reschedules it with backoff, an
    /// acceptance resets the counter. Returns frames delivered.
    pub fn drain_due(
        &mut self,
        now_step: u64,
        mut try_send: impl FnMut(RouterId, JoinerId, &BatchMessage) -> bool,
    ) -> usize {
        let mut delivered = 0;
        for ((router, dest), c) in &mut self.channels {
            if c.frames.is_empty() || c.next_attempt_step > now_step {
                continue;
            }
            while let Some(head) = c.frames.front() {
                if try_send(*router, *dest, head) {
                    c.frames.pop_front();
                    c.attempts = 0;
                    delivered += 1;
                } else {
                    c.attempts = c.attempts.saturating_add(1);
                    c.next_attempt_step = now_step + self.policy.delay(c.attempts);
                    break;
                }
            }
        }
        self.channels.retain(|(_, c)| !c.frames.is_empty());
        delivered
    }

    /// Drop every queued frame addressed to a retired unit.
    pub fn forget_unit(&mut self, unit: JoinerId) {
        self.channels.retain(|((_, dest), _)| *dest != unit);
    }
}

/// The join-stream destinations of `tuple` under `strategy` against a
/// given layout — a pure function of the tuple's key and the layout (no
/// randomness), which is what allows the engine to re-evaluate it against
/// *historical* layouts during scaling transitions: tuples stored under an
/// old layout keep receiving probes until they expire, so scaling needs no
/// state migration.
pub fn join_dests(
    strategy: RoutingStrategy,
    predicate: &JoinPredicate,
    tuple: &Tuple,
    layout: &Layout,
) -> Result<Vec<JoinerId>> {
    let opp = tuple.rel().opposite();
    Ok(match strategy {
        RoutingStrategy::Random => layout.units(opp).to_vec(),
        RoutingStrategy::Hash => {
            let h = key_hash(predicate, tuple)?;
            let opp_units = layout.units(opp);
            vec![opp_units[bucket_of(h, opp_units.len())]]
        }
        RoutingStrategy::ContRand { subgroups } => {
            let h = key_hash(predicate, tuple)?;
            let g = bucket_of(h, subgroups);
            layout.subgroup_units(opp, g).collect()
        }
        // Without the router's probe union (an epoch-dependent state this
        // pure function cannot see), the only complete answer is the
        // Random broadcast. Used for *historical* layouts during scaling
        // transitions only; the live path asks
        // [`RouterCore::planned_join_dests`] instead.
        RoutingStrategy::Adaptive { .. } => layout.units(opp).to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::rel::Rel;
    use bistream_types::value::Value;

    fn tuple(rel: Rel, k: i64) -> Tuple {
        Tuple::new(rel, 0, vec![Value::Int(k)])
    }

    fn equi() -> JoinPredicate {
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 }
    }

    fn route_one(router: &mut RouterCore, layout: &Layout, t: &Tuple) -> Vec<RoutedCopy> {
        let mut out = Vec::new();
        router.route(t, layout, &mut out).unwrap();
        out
    }

    fn stores_and_joins(copies: &[RoutedCopy]) -> (Vec<JoinerId>, Vec<JoinerId>) {
        let mut stores = Vec::new();
        let mut joins = Vec::new();
        for c in copies {
            match c.msg {
                StreamMessage::Data { purpose: Purpose::Store, .. } => stores.push(c.dest),
                StreamMessage::Data { purpose: Purpose::Join, .. } => joins.push(c.dest),
                _ => {}
            }
        }
        (stores, joins)
    }

    #[test]
    fn random_stores_once_broadcasts_join_to_opposite_side() {
        let layout = Layout::new(3, 4, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Random, equi(), 7);
        let copies = route_one(&mut r, &layout, &tuple(Rel::R, 5));
        let (stores, joins) = stores_and_joins(&copies);
        assert_eq!(stores.len(), 1);
        assert!(layout.units(Rel::R).contains(&stores[0]), "stored on own side");
        let mut expect: Vec<_> = layout.units(Rel::S).to_vec();
        let mut got = joins.clone();
        expect.sort();
        got.sort();
        assert_eq!(got, expect, "join copy to every S unit");
        assert_eq!(r.stats().copies, 5);
        assert_eq!(r.stats().copies_per_tuple(), 5.0);
    }

    #[test]
    fn hash_sends_exactly_two_copies_and_is_key_deterministic() {
        let layout = Layout::new(4, 4, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Hash, equi(), 7);
        let a = route_one(&mut r, &layout, &tuple(Rel::R, 42));
        let b = route_one(&mut r, &layout, &tuple(Rel::R, 42));
        assert_eq!(a.len(), 2);
        let (sa, ja) = stores_and_joins(&a);
        let (sb, jb) = stores_and_joins(&b);
        assert_eq!((sa, ja.clone()), (sb, jb), "same key, same units");
        // Matching S tuple's store unit is the R tuple's join unit.
        let s_copies = route_one(&mut r, &layout, &tuple(Rel::S, 42));
        let (s_store, _) = stores_and_joins(&s_copies);
        assert_eq!(s_store, ja, "equi pair meets on one unit");
    }

    #[test]
    fn contrand_confines_traffic_to_one_subgroup() {
        let layout = Layout::new(6, 6, 3).unwrap();
        let mut r =
            RouterCore::standalone(0, RoutingStrategy::ContRand { subgroups: 3 }, equi(), 7);
        for k in 0..50 {
            let copies = route_one(&mut r, &layout, &tuple(Rel::R, k));
            let (stores, joins) = stores_and_joins(&copies);
            // Store lands in the subgroup the key hashes to.
            let g_store = layout.subgroup_of(Rel::R, stores[0]).unwrap();
            let g_key = bucket_of(hash_one(&Value::Int(k)), 3);
            assert_eq!(g_store, g_key);
            // Join copies cover exactly the matching S subgroup.
            let mut expect: Vec<_> = layout.subgroup_units(Rel::S, g_key).collect();
            let mut got = joins.clone();
            expect.sort();
            got.sort();
            assert_eq!(got, expect);
            assert_eq!(copies.len(), 1 + expect.len(), "fan-out 1 + m/d");
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_shared_by_copies() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(3, RoutingStrategy::Random, equi(), 7);
        let first = route_one(&mut r, &layout, &tuple(Rel::R, 1));
        let second = route_one(&mut r, &layout, &tuple(Rel::S, 2));
        let seqs1: Vec<SeqNo> = first.iter().map(|c| c.msg.seq()).collect();
        assert!(seqs1.iter().all(|&s| s == 1), "all copies share seq 1");
        assert!(second.iter().all(|c| c.msg.seq() == 2));
        assert!(second.iter().all(|c| c.msg.router() == 3));
        assert_eq!(r.last_seq(), 2);
    }

    #[test]
    fn punctuation_reaches_every_unit_of_both_sides() {
        let layout = Layout::new(2, 3, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Random, equi(), 7);
        let mut out = Vec::new();
        r.route(&tuple(Rel::R, 1), &layout, &mut out).unwrap();
        out.clear();
        r.punctuate(&layout, &mut out);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|c| matches!(c.msg, StreamMessage::Punct(p) if p.seq == 1)));
        assert_eq!(r.stats().punctuations, 5);
    }

    #[test]
    fn random_store_spreads_over_own_side() {
        let layout = Layout::new(4, 1, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Random, equi(), 99);
        let mut seen = std::collections::HashSet::new();
        for k in 0..200 {
            let copies = route_one(&mut r, &layout, &tuple(Rel::R, k));
            let (stores, _) = stores_and_joins(&copies);
            seen.insert(stores[0]);
        }
        assert_eq!(seen.len(), 4, "all four R units hit");
    }

    #[test]
    fn router_tracks_input_rate() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Random, equi(), 7);
        let mut out = Vec::new();
        // 200 tuples/second for 3 seconds of event time.
        for ms in 0..3_000u64 {
            if ms % 5 == 0 {
                out.clear();
                r.route(&Tuple::new(Rel::R, ms, vec![Value::Int(1)]), &layout, &mut out).unwrap();
            }
        }
        let rate = r.observed_rate(3_000);
        assert!((rate - 200.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn attached_registry_sees_per_router_and_per_dest_series() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(1, RoutingStrategy::Random, equi(), 7);
        let reg = MetricsRegistry::new();
        r.attach_registry(&reg);
        let mut out = Vec::new();
        r.route(&tuple(Rel::R, 5), &layout, &mut out).unwrap();
        r.punctuate(&layout, &mut out);
        let snap = reg.scrape(0);
        let labels: &[(&str, &str)] = &[("router", "r1")];
        assert_eq!(
            snap.counter(bistream_types::metric_names::ROUTER_TUPLES_TOTAL, labels),
            Some(1)
        );
        // Store copy + join broadcast to both S units = 3 copies.
        assert_eq!(
            snap.counter(bistream_types::metric_names::ROUTER_COPIES_TOTAL, labels),
            Some(3)
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::ROUTER_PUNCTUATIONS_TOTAL, labels),
            Some(4)
        );
        assert_eq!(
            snap.counter(
                bistream_types::metric_names::ROUTER_ROUTE_DECISIONS_TOTAL,
                &[("router", "r1"), ("strategy", "random")]
            ),
            Some(1)
        );
        // Per-destination copy counters sum to the copy total.
        let dest_total: u64 = snap
            .samples
            .iter()
            .filter(|s| s.key.name == bistream_types::metric_names::ROUTER_DEST_COPIES_TOTAL)
            .map(|s| match s.value {
                bistream_types::registry::MetricValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(dest_total, 3);
        // Strategy switch re-labels subsequent decisions.
        r.set_strategy(RoutingStrategy::Hash);
        r.route(&tuple(Rel::R, 5), &layout, &mut out).unwrap();
        assert_eq!(
            reg.scrape(0).counter(
                bistream_types::metric_names::ROUTER_ROUTE_DECISIONS_TOTAL,
                &[("router", "r1"), ("strategy", "hash")]
            ),
            Some(1)
        );
    }

    #[test]
    fn batched_route_at_size_one_matches_per_tuple_framing() {
        let layout = Layout::new(4, 4, 1).unwrap();
        let mut per_tuple = RouterCore::standalone(0, RoutingStrategy::Hash, equi(), 7);
        let mut batched = RouterCore::standalone(0, RoutingStrategy::Hash, equi(), 7);
        for k in 0..20i64 {
            let t = tuple(if k % 2 == 0 { Rel::R } else { Rel::S }, k % 5);
            let copies = route_one(&mut per_tuple, &layout, &t);
            let mut frames = Vec::new();
            let seq = batched.route_batched(&t, &layout, &[], &mut frames).unwrap();
            // Same sequence assignment, same destinations, same purposes,
            // in the same emission order — one frame per copy.
            assert_eq!(frames.len(), copies.len());
            for (frame, copy) in frames.iter().zip(&copies) {
                assert_eq!(frame.dest, copy.dest);
                let BatchMessage::Batch(b) = &frame.msg else { panic!("data frame") };
                assert_eq!(b.len(), 1);
                assert_eq!(b.first_seq(), Some(seq));
                assert_eq!(copy.msg.seq(), seq);
                match copy.msg {
                    StreamMessage::Data { purpose, .. } => assert_eq!(b.purpose(), purpose),
                    _ => panic!("route emits data only"),
                }
            }
        }
        assert_eq!(per_tuple.stats(), batched.stats());
        assert_eq!(batched.pending_batched(), 0, "size 1 never leaves residue");
    }

    #[test]
    fn batches_accumulate_and_flush_on_threshold() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Hash, equi(), 7);
        r.set_batch_size(3);
        let mut out = Vec::new();
        // Same key → same store/join destinations every time.
        for _ in 0..2 {
            r.route_batched(&tuple(Rel::R, 42), &layout, &[], &mut out).unwrap();
        }
        assert!(out.is_empty(), "below threshold: nothing flushed");
        assert_eq!(r.pending_batched(), 4, "2 store + 2 join copies pending");
        r.route_batched(&tuple(Rel::R, 42), &layout, &[], &mut out).unwrap();
        assert_eq!(out.len(), 2, "store batch and join batch both filled");
        for frame in &out {
            let BatchMessage::Batch(b) = &frame.msg else { panic!("data frame") };
            assert_eq!(b.len(), 3);
            assert!(b.is_contiguous(), "one key, one router: dense seqs");
            assert_eq!((b.first_seq(), b.last_seq()), (Some(1), Some(3)));
        }
        assert_eq!(r.pending_batched(), 0);
    }

    #[test]
    fn pending_copies_gauge_tracks_unflushed_batches() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let reg = MetricsRegistry::new();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Hash, equi(), 7);
        r.attach_registry(&reg);
        r.set_batch_size(3);
        let labels: &[(&str, &str)] = &[("router", "r0")];
        let pending = |reg: &MetricsRegistry| {
            reg.scrape(0).gauge(bistream_types::metric_names::ROUTER_PENDING_COPIES, labels)
        };
        let mut out = Vec::new();
        for _ in 0..2 {
            r.route_batched(&tuple(Rel::R, 42), &layout, &[], &mut out).unwrap();
        }
        assert_eq!(pending(&reg), Some(4), "2 store + 2 join copies buffered");
        // Third tuple fills both batches: everything flushes.
        r.route_batched(&tuple(Rel::R, 42), &layout, &[], &mut out).unwrap();
        assert_eq!(pending(&reg), Some(0), "threshold flush empties the gauge");
        // A stragglers' flush also returns the gauge to zero.
        r.route_batched(&tuple(Rel::S, 7), &layout, &[], &mut out).unwrap();
        assert!(pending(&reg).unwrap() > 0);
        r.flush_batches(&mut out);
        assert_eq!(pending(&reg), Some(0));
    }

    #[test]
    fn punctuation_flushes_pending_batches_first() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Hash, equi(), 7);
        r.set_batch_size(64);
        let mut out = Vec::new();
        r.route_batched(&tuple(Rel::R, 1), &layout, &[], &mut out).unwrap();
        r.route_batched(&tuple(Rel::S, 2), &layout, &[], &mut out).unwrap();
        assert!(out.is_empty());
        r.punctuate_batched(&layout, &mut out);
        // All data frames precede all punctuation frames, so per-channel
        // FIFO keeps the punctuation behind the copies it covers.
        let first_punct = out.iter().position(|f| matches!(f.msg, BatchMessage::Punct(_))).unwrap();
        assert!(out[..first_punct].iter().all(|f| matches!(f.msg, BatchMessage::Batch(_))));
        assert!(out[first_punct..].iter().all(|f| matches!(f.msg, BatchMessage::Punct(_))));
        assert_eq!(out.len() - first_punct, 4, "punctuation to every unit");
        assert!(out[first_punct..]
            .iter()
            .all(|f| matches!(f.msg, BatchMessage::Punct(p) if p.seq == 2)));
        assert_eq!(r.pending_batched(), 0);
    }

    #[test]
    fn extras_share_the_sequence_stamp_and_skip_router_counters() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Hash, equi(), 7);
        let mut out = Vec::new();
        let extra = JoinerId(99);
        let seq = r.route_batched(&tuple(Rel::R, 5), &layout, &[extra], &mut out).unwrap();
        let to_extra: Vec<_> = out.iter().filter(|f| f.dest == extra).collect();
        assert_eq!(to_extra.len(), 1);
        let BatchMessage::Batch(b) = &to_extra[0].msg else { panic!("data frame") };
        assert_eq!(b.purpose(), Purpose::Join);
        assert_eq!(b.first_seq(), Some(seq));
        assert_eq!(r.stats().copies, 2, "extras are engine-level copies");
    }

    #[test]
    fn batch_size_histogram_records_flushed_lengths() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(1, RoutingStrategy::Hash, equi(), 7);
        let reg = MetricsRegistry::new();
        r.attach_registry(&reg);
        r.set_batch_size(2);
        let mut out = Vec::new();
        // Three same-key tuples: the 2-entry batches flush on threshold,
        // the 1-entry residue on punctuation.
        for _ in 0..3 {
            r.route_batched(&tuple(Rel::R, 8), &layout, &[], &mut out).unwrap();
        }
        r.punctuate_batched(&layout, &mut out);
        let snap = reg.scrape(0);
        let labels: &[(&str, &str)] = &[("router", "r1")];
        let Some(bistream_types::registry::MetricValue::Histogram(h)) =
            snap.get(bistream_types::metric_names::BATCH_SIZE, labels)
        else {
            panic!("bistream_batch_size histogram registered");
        };
        assert_eq!(h.count, 4, "two threshold flushes + two punctuation flushes");
    }

    #[test]
    fn hash_without_equi_key_errors() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let pred = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.0 };
        let mut r = RouterCore::standalone(0, RoutingStrategy::Hash, pred, 7);
        let mut out = Vec::new();
        assert!(r.route(&tuple(Rel::R, 1), &layout, &mut out).is_err());
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = BackoffPolicy { base_steps: 2, cap_steps: 10 };
        assert_eq!(p.delay(0), 2);
        assert_eq!(p.delay(1), 4);
        assert_eq!(p.delay(2), 8);
        assert_eq!(p.delay(3), 10, "capped");
        assert_eq!(p.delay(200), 10, "huge attempts saturate at the cap");
    }

    #[test]
    fn retry_queue_preserves_channel_fifo_and_backs_off() {
        let mut q = RetryQueue::new(BackoffPolicy { base_steps: 1, cap_steps: 8 });
        let punct = |seq| BatchMessage::Punct(Punctuation { router: 0, seq });
        q.push(0, JoinerId(0), punct(1), 0);
        q.push(0, JoinerId(0), punct(2), 0);
        q.push(1, JoinerId(0), punct(3), 0);
        assert!(q.has_pending(0, JoinerId(0)));
        assert_eq!(q.pending(), 3);
        assert_eq!(q.earliest_due(), Some(1));
        // Not yet due at step 0.
        assert_eq!(q.drain_due(0, |_, _, _| true), 0);
        // Still refused at step 1: attempts bump, due moves out with backoff.
        assert_eq!(q.drain_due(1, |_, _, _| false), 0);
        assert_eq!(q.earliest_due(), Some(2));
        assert_eq!(q.drain_due(2, |_, _, _| false), 0);
        assert_eq!(q.earliest_due(), Some(4), "exponential: 1, 2 then 4 steps out");
        // Healed: everything drains in per-channel FIFO order.
        let mut seen: Vec<(RouterId, u64)> = Vec::new();
        assert_eq!(
            q.drain_due(4, |r, _, m| {
                seen.push((
                    r,
                    match m {
                        BatchMessage::Punct(p) => p.seq,
                        BatchMessage::Batch(b) => b.first_seq().unwrap_or(0),
                    },
                ));
                true
            }),
            3
        );
        let from_r0: Vec<u64> = seen.iter().filter(|(r, _)| *r == 0).map(|(_, s)| *s).collect();
        assert_eq!(from_r0, vec![1, 2], "FIFO per channel");
        assert_eq!(q.pending(), 0);
        assert_eq!(q.earliest_due(), None);
    }

    #[test]
    fn retry_queue_forgets_retired_units() {
        let mut q = RetryQueue::new(BackoffPolicy::default());
        let punct = |seq| BatchMessage::Punct(Punctuation { router: 0, seq });
        q.push(0, JoinerId(0), punct(1), 0);
        q.push(0, JoinerId(1), punct(2), 0);
        q.forget_unit(JoinerId(0));
        assert!(!q.has_pending(0, JoinerId(0)));
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn adaptive_routes_like_contrand_at_epoch_zero() {
        use crate::adaptive::AdaptiveShared;
        use crate::config::AdaptiveTuning;
        let layout = Layout::new(6, 6, 3).unwrap();
        let shared = AdaptiveShared::new(AdaptiveTuning::default(), 1, 3, 6, 8, 7);
        let mut ad = RouterCore::standalone(0, RoutingStrategy::Adaptive { subgroups: 3 }, equi(), 7);
        ad.attach_adaptive(shared.handle(0));
        let mut cr =
            RouterCore::standalone(0, RoutingStrategy::ContRand { subgroups: 3 }, equi(), 7);
        for k in 0..50 {
            let a = route_one(&mut ad, &layout, &tuple(Rel::R, k));
            let c = route_one(&mut cr, &layout, &tuple(Rel::R, k));
            // Same seed, same subgroup maths, same RNG draw count: the
            // epoch-0 adaptive plan IS ContRand.
            let (sa, ja) = stores_and_joins(&a);
            let (sc, jc) = stores_and_joins(&c);
            assert_eq!(sa, sc);
            let (mut ja, mut jc) = (ja, jc);
            ja.sort();
            jc.sort();
            assert_eq!(ja, jc);
        }
        assert_eq!(ad.stats(), cr.stats());
    }

    #[test]
    fn adaptive_without_attached_state_errors() {
        let layout = Layout::new(2, 2, 1).unwrap();
        let mut r =
            RouterCore::standalone(0, RoutingStrategy::Adaptive { subgroups: 1 }, equi(), 7);
        let mut out = Vec::new();
        assert!(r.route(&tuple(Rel::R, 1), &layout, &mut out).is_err());
    }

    #[test]
    fn adaptive_tick_updates_gauges_and_switch_counter() {
        use crate::adaptive::AdaptiveShared;
        use crate::config::AdaptiveTuning;
        let layout = Layout::new(4, 4, 1).unwrap();
        let shared = AdaptiveShared::new(AdaptiveTuning::default(), 1, 4, 4, 8, 7);
        let mut r =
            RouterCore::standalone(2, RoutingStrategy::Adaptive { subgroups: 4 }, equi(), 7);
        r.attach_adaptive(shared.handle(0));
        let reg = MetricsRegistry::new();
        r.attach_registry(&reg);
        shared.force_flip_every_tick(true);
        let mut out = Vec::new();
        r.route(&tuple(Rel::R, 5), &layout, &mut out).unwrap();
        r.punctuate(&layout, &mut out);
        let snap = reg.scrape(0);
        let labels: &[(&str, &str)] = &[("router", "r2")];
        assert_eq!(
            snap.gauge(bistream_types::metric_names::ROUTER_ADAPTIVE_SUBGROUPS, labels),
            Some(1),
            "flip adopted d=1 at the fence"
        );
        assert_eq!(
            snap.gauge(bistream_types::metric_names::ROUTER_HOT_KEYS, labels),
            Some(0)
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::ROUTER_STRATEGY_SWITCHES_TOTAL, labels),
            Some(1)
        );
        assert_eq!(shared.switches(), 1);
    }

    #[test]
    fn routing_survives_layout_growth() {
        let mut layout = Layout::new(2, 2, 1).unwrap();
        let mut r = RouterCore::standalone(0, RoutingStrategy::Random, equi(), 7);
        let before = route_one(&mut r, &layout, &tuple(Rel::R, 1));
        assert_eq!(before.len(), 3);
        layout.add_unit(Rel::S);
        let after = route_one(&mut r, &layout, &tuple(Rel::R, 1));
        assert_eq!(after.len(), 4, "join fan-out follows the layout");
    }
}
