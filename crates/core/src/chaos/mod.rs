//! Deterministic fault injection: seeded chaos schedules, crash/recover
//! drills and the exploration harness.
//!
//! The original systems outsource failure handling to their platforms
//! (Storm's tuple replay, Kubernetes restarts), so the paper never tests
//! it — but a reproduction that claims the ordering protocol's guarantees
//! (Definitions 7/8, Theorem 1) should demonstrate they hold *under*
//! failure, not just under adversarial-but-lossless schedules. This
//! module makes failure a first-class, replayable input:
//!
//! - [`net::ChaosNet`] executes a seeded
//!   [`FaultPlan`](bistream_types::fault::FaultPlan) — channel-delay
//!   windows, router→joiner partitions and unit-crash events — as a pure
//!   function of `(seed, step)`, layered on the same pairwise-FIFO
//!   channel model as [`crate::delivery::ChannelNet`].
//! - [`trial`] runs a fixed two-phase workload (store everything, then
//!   probe everything) through a chaos-armed
//!   [`BicliqueEngine`](crate::engine::BicliqueEngine) with the
//!   protocol-invariant [`Auditor`](bistream_types::audit::Auditor) and
//!   its output oracle armed as the pass/fail judge.
//! - [`minimize`](minimize::minimize) shrinks any failing plan, ddmin
//!   style, to a 1-minimal set of fault events worth committing as a
//!   regression artifact.
//!
//! The exploration loop ([`trial::explore`]) sweeps seeds per scenario,
//! minimises every failure and packages it as a
//! [`ChaosArtifact`](bistream_types::fault::ChaosArtifact) that a plain
//! `#[test]` re-executes byte-for-byte.
//!
//! [`slo`] grades the same seeded plans against service-level objectives
//! instead of the auditor: sim trials with a scrape sampler riding along,
//! plus a live broker-stall drill for the fault family virtual time
//! cannot express (E19).

pub mod minimize;
pub mod net;
pub mod slo;
pub mod trial;

pub use minimize::minimize;
pub use net::ChaosNet;
pub use slo::{run_broker_stall_drill, run_graded_trial, GradedTrial, StallDrillReport};
pub use trial::{
    explore, replay, run_trial, scenario_profile, Exploration, TrialReport, SCENARIOS,
};
