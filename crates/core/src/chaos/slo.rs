//! SLO-graded chaos: the E19 availability drills.
//!
//! PR-5's chaos harness judges trials with the protocol auditor — a
//! correctness oracle. This module grades the *same* seeded fault plans
//! against service-level objectives instead: each trial's scrape series is
//! fed through [`bistream_types::recorder::grade_run`], so an injected
//! fault surfaces as burn-rate alerts, stall verdicts and (on breach) a
//! byte-stable flight-recorder bundle.
//!
//! Two drill shapes:
//!
//! - [`run_graded_trial`] — the virtual-time two-phase workload of
//!   [`crate::chaos::trial`] with a registry [`Sampler`] riding along.
//!   Delay/partition/crash plans defer or replay work but never park the
//!   ingest path, so a correct engine holds its objectives and the drill
//!   documents *availability under faults*.
//! - [`run_broker_stall_drill`] — a live [`Pipeline`] whose ingest queue
//!   is stalled by a seeded window (via [`Pipeline::set_queue_stalled`]).
//!   Publishers park, the ingest counter flatlines while the queue's
//!   stall-ms series grows, and the activity-gated throughput floor
//!   breaches — the one fault family virtual time cannot express, because
//!   a `ChaosNet` stall window elapses within a single pump call.

use crate::chaos::trial::scenario_profile;
use crate::config::{EngineConfig, RoutingStrategy};
use crate::engine::BicliqueEngine;
use crate::exec::{Pipeline, PipelineConfig, PipelineReport, INGEST_QUEUE};
use bistream_types::error::Result;
use bistream_types::fault::{mix, FaultEvent, FaultPlan, TrialSpec};
use bistream_types::predicate::JoinPredicate;
use bistream_types::recorder::RunHealth;
use bistream_types::registry::{Observability, Sampler};
use bistream_types::rel::Rel;
use bistream_types::slo::SloSpec;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::watchdog::WatchdogConfig;
use bistream_types::window::WindowSpec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Virtual-time sampling interval for graded sim trials (ms).
const SIM_SAMPLE_MS: Ts = 50;

/// One SLO-graded chaos trial.
#[derive(Debug, Clone)]
pub struct GradedTrial {
    /// Scenario the plan was generated for.
    pub scenario: String,
    /// Plan seed.
    pub seed: u64,
    /// Auditor violations plus any panic/error, rendered as strings.
    pub violations: Vec<String>,
    /// Join results that surfaced.
    pub results: usize,
    /// SLO verdicts, stall findings and (on breach) the recorder bundle.
    pub health: RunHealth,
}

impl GradedTrial {
    /// Availability percentage from the worst-graded objective (100 when
    /// no SLO was configured or nothing breached).
    pub fn availability_pct(&self) -> f64 {
        self.health.slo.as_ref().map(|s| s.availability_pct()).unwrap_or(100.0)
    }

    /// `true` when the trial failed correctness (auditor/panic/error) —
    /// distinct from an SLO breach, which is `health.breached()`.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Run one seeded chaos trial of `scenario` under SLO grading: the
/// two-phase store/probe workload with a scrape sampler riding along, the
/// auditor as correctness judge, and [`grade_run`] as the availability
/// judge over the collected series.
///
/// [`grade_run`]: bistream_types::recorder::grade_run
pub fn run_graded_trial(
    scenario: &str,
    seed: u64,
    spec: &TrialSpec,
    slo: &SloSpec,
    watchdog: &WatchdogConfig,
) -> GradedTrial {
    let plan = FaultPlan::generate(seed, &scenario_profile(scenario, spec));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        graded_trial_inner(&plan, spec, slo, watchdog)
    }));
    match outcome {
        Ok(Ok(trial)) => trial,
        Ok(Err(e)) => GradedTrial {
            scenario: scenario.to_owned(),
            seed,
            violations: vec![format!("engine error: {e}")],
            results: 0,
            health: RunHealth::default(),
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            GradedTrial {
                scenario: scenario.to_owned(),
                seed,
                violations: vec![format!("panic: {msg}")],
                results: 0,
                health: RunHealth::default(),
            }
        }
    }
}

fn graded_trial_inner(
    plan: &FaultPlan,
    spec: &TrialSpec,
    slo: &SloSpec,
    watchdog: &WatchdogConfig,
) -> Result<GradedTrial> {
    let pairs = spec.pairs.max(1) as i64;
    // Same time layout as `trial::run_trial_inner`: stores in
    // [0, pairs·10), probes in [base, base + pairs·10).
    let base: Ts = (pairs as Ts) * 10 + 100;
    let window = WindowSpec::sliding(3 * base);
    let config = EngineConfig {
        r_joiners: spec.joiners_per_side.max(1) as usize,
        s_joiners: spec.joiners_per_side.max(1) as usize,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window,
        routing: RoutingStrategy::Hash,
        archive_period_ms: (base / 8).max(1),
        punctuation_interval_ms: 20,
        ordering: true,
        seed: spec.engine_seed,
        batch_size: spec.batch_size.max(1) as usize,
        adaptive: Default::default(),
    };
    let obs = Observability::new();
    let auditor = bistream_types::audit::Auditor::new();
    auditor.enable_oracle(window.size());
    let mut engine = BicliqueEngine::builder(config)
        .routers(spec.routers.max(1) as usize)
        .observability(obs.clone())
        .auditor(auditor.clone())
        .chaos(plan.clone())
        .build()?;
    engine.capture_results();
    let mut sampler = Sampler::new(obs.registry.clone(), SIM_SAMPLE_MS);
    sampler.force_sample(0);

    let punct_every = spec.punct_every.max(1) as i64;
    let ckpt_every = spec.checkpoint_every.max(1);
    let mut punct_rounds = 0u32;

    let mut now: Ts = 0;
    for i in 0..pairs {
        now = (i as Ts) * 10;
        engine.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i)]), now)?;
        if (i + 1) % punct_every == 0 {
            engine.punctuate(now + 1)?;
            punct_rounds += 1;
            if punct_rounds % ckpt_every == 0 {
                engine.checkpoint_all()?;
            }
        }
        sampler.maybe_sample(now);
    }
    engine.punctuate(base - 50)?;
    for i in 0..pairs {
        now = base + (i as Ts) * 10;
        engine.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i)]), now)?;
        if (i + 1) % punct_every == 0 {
            engine.punctuate(now + 1)?;
            punct_rounds += 1;
            if punct_rounds % ckpt_every == 0 {
                engine.checkpoint_all()?;
            }
        }
        sampler.maybe_sample(now);
    }
    engine.punctuate(now + 10)?;
    engine.flush()?;
    let results = engine.take_captured().len();

    let series = bistream_types::metrics::finalize_scrape_series(
        &obs.registry,
        now + 10,
        sampler.into_series(),
    );
    let events = obs.journal.snapshot();
    let health = bistream_types::recorder::grade_run(Some(slo), watchdog, &series, &events, &[]);
    let violations: Vec<String> = auditor.finish().iter().map(|v| v.to_string()).collect();
    Ok(GradedTrial { scenario: plan.scenario.clone(), seed: plan.seed, violations, results, health })
}

/// Outcome of the live broker-stall drill: the seeded plan that drove it
/// and the pipeline report (whose `health` carries the SLO verdicts and,
/// on breach, the flight-recorder bundle).
#[derive(Debug)]
pub struct StallDrillReport {
    /// The seeded stall plan the drill executed.
    pub plan: FaultPlan,
    /// The pipeline's final report, graded over the drill's scrapes.
    pub report: PipelineReport,
}

/// Run the live broker-stall drill: a [`Pipeline`] fed continuously from
/// a background thread while a seeded stall window parks publishers on
/// the ingest queue ([`Pipeline::set_queue_stalled`]). During the window
/// the ingest counter freezes but the queue's stall-ms counter grows, so
/// the activity-gated throughput floor grades those intervals as
/// *breached-while-offered* — never as idle — and a long enough window
/// fires the multi-window burn alert.
///
/// `intervals` (≥ 8) and `interval_ms` (≥ 20) pace the wall-clock scrape
/// cadence; the stall window starts at a seed-chosen interval (2 or 3)
/// and spans 4 intervals, which fills the fast burn window whenever
/// `slo.fast_window <= 3`.
pub fn run_broker_stall_drill(
    seed: u64,
    intervals: u64,
    interval_ms: u64,
    slo: SloSpec,
    watchdog: WatchdogConfig,
) -> Result<StallDrillReport> {
    let intervals = intervals.max(8);
    let interval_ms = interval_ms.max(20);
    let start = 2 + mix(seed, 1) % 2;
    let plan = FaultPlan {
        seed,
        scenario: "broker_stall".to_owned(),
        events: vec![FaultEvent::StallQueue {
            queue: INGEST_QUEUE.to_owned(),
            from_step: start,
            until_step: start + 4,
        }],
    };

    let mut engine = EngineConfig::default_equi();
    engine.ordering = true;
    engine.window = WindowSpec::sliding(600_000);
    let mut config = PipelineConfig::new(engine);
    config.slo = Some(slo);
    config.watchdog = watchdog;
    let pipeline = Arc::new(Pipeline::launch(config)?);

    // Background feeder: offered load never stops, so every interval of
    // the drill has input either ingested (healthy) or parked behind the
    // stalled queue (breached) — the idle/stall disambiguation the SLO
    // engine's activity gate relies on.
    let stop = Arc::new(AtomicBool::new(false));
    let feeder = {
        let pipeline = Arc::clone(&pipeline);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<()> {
            let mut k: i64 = 0;
            while !stop.load(Ordering::Relaxed) {
                let now = pipeline.now();
                pipeline.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(k % 64)]))?;
                pipeline.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(k % 64)]))?;
                k += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            Ok(())
        })
    };

    let mut stalled = false;
    for i in 0..intervals {
        let want = plan.queue_stalled(INGEST_QUEUE, i);
        if want != stalled {
            pipeline.set_queue_stalled(INGEST_QUEUE, want)?;
            stalled = want;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
        pipeline.sample();
    }
    if stalled {
        pipeline.set_queue_stalled(INGEST_QUEUE, false)?;
    }
    stop.store(true, Ordering::Relaxed);
    feeder.join().map_err(|_| bistream_types::error::Error::Closed)??;
    let pipeline = Arc::try_unwrap(pipeline).map_err(|_| bistream_types::error::Error::Closed)?;
    let report = pipeline.finish()?;
    Ok(StallDrillReport { plan, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drill_slo() -> SloSpec {
        SloSpec::new().min_ingest_tps(50.0)
    }

    #[test]
    fn healthy_sim_trial_holds_its_objectives() {
        let spec = TrialSpec { pairs: 24, ..TrialSpec::default() };
        let slo = SloSpec::new().min_ingest_tps(20.0).p99_latency_ms(5_000);
        let trial = run_graded_trial("delay", 0, &spec, &slo, &WatchdogConfig::default());
        assert!(!trial.failed(), "{:?}", trial.violations);
        assert_eq!(trial.results, 24);
        let report = trial.health.slo.as_ref().expect("slo configured");
        assert!(!report.breached, "{report:?}");
        assert!(report.alerts.is_empty());
        assert!((trial.availability_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn graded_trials_are_deterministic() {
        let spec = TrialSpec { pairs: 16, ..TrialSpec::default() };
        let slo = SloSpec::new().min_ingest_tps(20.0);
        let wd = WatchdogConfig::default();
        let a = run_graded_trial("stall", 3, &spec, &slo, &wd);
        let b = run_graded_trial("stall", 3, &spec, &slo, &wd);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.results, b.results);
        assert_eq!(a.health, b.health);
    }

    #[test]
    fn broker_stall_drill_breaches_the_throughput_floor() {
        let drill = run_broker_stall_drill(7, 10, 40, drill_slo(), WatchdogConfig::default())
            .expect("drill runs");
        let health = &drill.report.health;
        let slo = health.slo.as_ref().expect("slo configured");
        assert!(slo.breached, "stalled ingest must breach the floor: {slo:?}");
        assert!(!slo.alerts.is_empty(), "burn alert fires: {slo:?}");
        let bundle = health.bundle.as_ref().expect("breach dumps a bundle");
        let text = bundle.to_json();
        let back = bistream_types::recorder::BreachBundle::from_json(&text).expect("parses");
        assert_eq!(back.to_json(), text, "bundle round-trips byte-stably");
    }
}
