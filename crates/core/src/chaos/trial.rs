//! Crash/recover drills: run a fixed workload through a chaos-armed
//! engine and judge it with the protocol auditor.
//!
//! A *trial* is the unit of chaos testing: one engine, one
//! [`FaultPlan`], one deterministic two-phase workload (store every R
//! tuple, then probe with every S tuple — so a recovery bug that loses
//! stored state is *observable*, not masked by interleaved probing), and
//! the [`Auditor`] with its output oracle as the only pass/fail
//! authority. Panics and engine errors count as failures too — a chaos
//! schedule that wedges or crashes the engine is exactly what the
//! explorer exists to find.
//!
//! [`explore`] sweeps seeds per scenario; every failing plan is ddmin-
//! minimised ([`crate::chaos::minimize`]) and packaged as a replayable
//! [`ChaosArtifact`]. [`replay`] re-executes an artifact and is what the
//! committed regression tests call.

use crate::chaos::minimize::minimize;
use crate::config::{EngineConfig, RoutingStrategy};
use crate::engine::BicliqueEngine;
use bistream_types::audit::Auditor;
use bistream_types::error::Result;
use bistream_types::fault::{ChaosArtifact, ChaosProfile, FaultPlan, TrialSpec, ARTIFACT_VERSION};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;

/// The scenario names the exploration harness understands.
pub const SCENARIOS: &[&str] = &["delay", "partition", "crash", "stall", "mixed"];

/// Outcome of one chaos trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialReport {
    /// Auditor violations (plus any panic/error, rendered as strings).
    /// Empty means the trial passed.
    pub violations: Vec<String>,
    /// Join results that surfaced (after crash-replay deduplication).
    pub results: usize,
    /// Crash drills the plan actually fired.
    pub crashes_fired: u32,
}

impl TrialReport {
    /// `true` when the trial failed (any violation, panic or error).
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// The fault profile the harness draws plans from for `scenario`, sized
/// to `spec`'s topology and workload length.
pub fn scenario_profile(scenario: &str, spec: &TrialSpec) -> ChaosProfile {
    let routers: Vec<u32> = (0..spec.routers.max(1)).collect();
    let units: Vec<u32> = (0..spec.joiners_per_side.max(1) * 2).collect();
    let mut p = ChaosProfile::new(scenario, routers, units);
    // Steps advance roughly one per delivered frame; with hash routing a
    // pair is ~4 data frames plus periodic punctuation fan-out. Aim the
    // fault horizon at the middle of the run so crashes land while state
    // exists and recovery still gets exercised by the probe phase.
    p.horizon = (spec.pairs as u64).saturating_mul(4).max(64);
    p.max_window = 24;
    match scenario {
        "delay" => p.delays = 4,
        "partition" => p.partitions = 3,
        "crash" => p.crashes = 2,
        "stall" => {
            // Stall windows target the per-unit broker queues; in the
            // simulator the chaos net maps a `unit.N` stall onto every
            // channel into unit N (see [`crate::chaos::net::ChaosNet`]).
            p.queues = p.units.iter().map(|u| format!("unit.{u}")).collect();
            p.stalls = 2;
        }
        "mixed" => {
            p.delays = 2;
            p.partitions = 2;
            p.crashes = 1;
        }
        _ => {}
    }
    p
}

/// Run one trial: the two-phase workload under `plan`, judged by the
/// auditor. Panics are caught and reported as violations.
pub fn run_trial(plan: &FaultPlan, spec: &TrialSpec) -> TrialReport {
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_trial_inner(plan, spec)));
    match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => TrialReport {
            violations: vec![format!("engine error: {e}")],
            results: 0,
            crashes_fired: 0,
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            TrialReport { violations: vec![format!("panic: {msg}")], results: 0, crashes_fired: 0 }
        }
    }
}

fn run_trial_inner(plan: &FaultPlan, spec: &TrialSpec) -> Result<TrialReport> {
    let pairs = spec.pairs.max(1) as i64;
    // All stores happen in [0, pairs·10); all probes in [base, base+pairs·10).
    // The window spans both phases so every pair matches exactly once.
    let base: Ts = (pairs as Ts) * 10 + 100;
    let window = WindowSpec::sliding(3 * base);
    let config = EngineConfig {
        r_joiners: spec.joiners_per_side.max(1) as usize,
        s_joiners: spec.joiners_per_side.max(1) as usize,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window,
        routing: RoutingStrategy::Hash,
        archive_period_ms: (base / 8).max(1),
        punctuation_interval_ms: 20,
        ordering: true,
        seed: spec.engine_seed,
        batch_size: spec.batch_size.max(1) as usize,
        adaptive: Default::default(),
    };
    let auditor = Auditor::new();
    auditor.enable_oracle(window.size());
    let mut engine = BicliqueEngine::builder(config)
        .routers(spec.routers.max(1) as usize)
        .auditor(auditor.clone())
        .chaos(plan.clone())
        .build()?;
    match spec.bug.as_str() {
        "skip_rehydrate" => engine.debug_skip_rehydrate(true),
        "corrupt_frontier" => {}
        _ => {}
    }
    engine.capture_results();

    let punct_every = spec.punct_every.max(1) as i64;
    let ckpt_every = spec.checkpoint_every.max(1);
    let mut punct_rounds = 0u32;
    let mut results = 0usize;

    // Phase A: store every R tuple (distinct keys), punctuating and
    // checkpointing on the configured cadence.
    let mut now: Ts = 0;
    for i in 0..pairs {
        now = (i as Ts) * 10;
        engine.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i)]), now)?;
        if spec.bug == "corrupt_frontier" && i == pairs / 2 {
            // Seeded watermark bug: force router 0's frontier far past
            // every real punctuation; buffered tuples release early and
            // the auditor's Definition-7 cross-check fires.
            engine.debug_corrupt_frontier(0, u64::MAX / 2)?;
        }
        if (i + 1) % punct_every == 0 {
            engine.punctuate(now + 1)?;
            punct_rounds += 1;
            if punct_rounds % ckpt_every == 0 {
                engine.checkpoint_all()?;
            }
        }
    }
    engine.punctuate(base - 50)?;

    // Phase B: probe every key with S tuples.
    for i in 0..pairs {
        now = base + (i as Ts) * 10;
        engine.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i)]), now)?;
        if (i + 1) % punct_every == 0 {
            engine.punctuate(now + 1)?;
            punct_rounds += 1;
            if punct_rounds % ckpt_every == 0 {
                engine.checkpoint_all()?;
            }
        }
    }
    engine.punctuate(now + 10)?;
    engine.flush()?;
    results += engine.take_captured().len();

    let violations: Vec<String> = auditor.finish().iter().map(|v| v.to_string()).collect();
    Ok(TrialReport { violations, results, crashes_fired: engine.crashes_fired() })
}

/// Re-execute a committed artifact's plan against its recorded trial
/// parameters. Deterministic: two replays of the same artifact produce
/// identical reports.
pub fn replay(artifact: &ChaosArtifact) -> TrialReport {
    run_trial(&artifact.plan, &artifact.trial)
}

/// Outcome of a seed sweep over one scenario.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The scenario explored.
    pub scenario: String,
    /// Seeds actually run (≤ the requested budget with `stop_at_first`).
    pub seeds_run: u64,
    /// Trials that failed.
    pub failures: Vec<ChaosArtifact>,
}

/// Sweep `seeds` generated plans of `scenario` against `spec`. Every
/// failing plan is ddmin-minimised and packaged as a replayable
/// [`ChaosArtifact`] whose violations come from re-running the
/// *minimised* plan.
pub fn explore(scenario: &str, seeds: u64, spec: &TrialSpec, stop_at_first: bool) -> Exploration {
    let profile = scenario_profile(scenario, spec);
    let mut failures = Vec::new();
    let mut seeds_run = 0;
    for seed in 0..seeds {
        seeds_run += 1;
        let plan = FaultPlan::generate(seed, &profile);
        let report = run_trial(&plan, spec);
        if !report.failed() {
            continue;
        }
        let minimized = minimize(&plan, |candidate| run_trial(candidate, spec).failed());
        let final_report = run_trial(&minimized, spec);
        failures.push(ChaosArtifact {
            version: ARTIFACT_VERSION,
            scenario: scenario.to_owned(),
            seed,
            plan: minimized,
            trial: spec.clone(),
            violations: final_report.violations,
        });
        if stop_at_first {
            break;
        }
    }
    Exploration { scenario: scenario.to_owned(), seeds_run, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::fault::FaultEvent;

    fn quick_spec() -> TrialSpec {
        TrialSpec { pairs: 24, ..TrialSpec::default() }
    }

    #[test]
    fn healthy_engine_passes_generated_plans_in_every_scenario() {
        let spec = quick_spec();
        for scenario in SCENARIOS {
            for seed in 0..3u64 {
                let plan = FaultPlan::generate(seed, &scenario_profile(scenario, &spec));
                let report = run_trial(&plan, &spec);
                assert!(
                    !report.failed(),
                    "{scenario}/seed {seed} failed a healthy engine: {:?}",
                    report.violations
                );
                assert_eq!(report.results, spec.pairs as usize, "{scenario}/seed {seed}");
            }
        }
    }

    #[test]
    fn trials_are_deterministic() {
        let spec = quick_spec();
        let plan = FaultPlan::generate(1, &scenario_profile("mixed", &spec));
        assert_eq!(run_trial(&plan, &spec), run_trial(&plan, &spec));
    }

    #[test]
    fn skip_rehydrate_bug_fails_under_a_crash_plan() {
        let mut spec = quick_spec();
        spec.bug = "skip_rehydrate".to_owned();
        // One crash late enough that a checkpoint has happened.
        let plan = FaultPlan {
            seed: 0,
            scenario: "crash".into(),
            events: vec![FaultEvent::CrashUnit { unit: 0, at_step: 60 }],
        };
        let report = run_trial(&plan, &spec);
        assert!(report.failed(), "losing checkpointed state must trip the oracle");
        assert!(report.crashes_fired >= 1);
        // The same plan on a healthy engine passes — the failure is the
        // bug's, not the plan's.
        let healthy = run_trial(&plan, &quick_spec());
        assert!(!healthy.failed(), "healthy engine: {:?}", healthy.violations);
    }

    #[test]
    fn corrupt_frontier_bug_fails_even_with_an_empty_plan() {
        let mut spec = quick_spec();
        spec.bug = "corrupt_frontier".to_owned();
        let report = run_trial(&FaultPlan::none(), &spec);
        assert!(report.failed(), "premature releases must trip the auditor");
    }

    #[test]
    fn explorer_finds_and_minimizes_the_seeded_bug() {
        let mut spec = quick_spec();
        spec.bug = "skip_rehydrate".to_owned();
        let exploration = explore("crash", 16, &spec, true);
        assert!(
            !exploration.failures.is_empty(),
            "explorer must find skip_rehydrate within 16 crash seeds"
        );
        let artifact = &exploration.failures[0];
        assert!(!artifact.violations.is_empty());
        // Minimal: every surviving event is necessary.
        for i in 0..artifact.plan.events.len() {
            let mut fewer = artifact.plan.clone();
            fewer.events.remove(i);
            assert!(
                !run_trial(&fewer, &spec).failed(),
                "event {i} of the minimized plan is removable"
            );
        }
        // Replayable: the artifact re-fails with the same violations.
        let again = replay(artifact);
        assert!(again.failed());
        assert_eq!(again.violations, artifact.violations);
    }
}
