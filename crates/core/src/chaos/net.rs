//! Plan-driven network scheduler: [`ChannelNet`] semantics plus injected
//! faults.
//!
//! [`ChaosNet`] carries the same per-channel FIFO queues as the shuffled
//! [`ChannelNet`](crate::delivery::ChannelNet) scheduler, but every
//! scheduling decision is a pure function of `(plan.seed, step)` via
//! [`fault::mix`](bistream_types::fault::mix) — no thread timing, no
//! shared RNG state — so an identical plan replays an identical schedule.
//! Three fault families act here:
//!
//! - **Delay windows** make a channel ineligible for delivery while the
//!   window is open (frames queue up; FIFO is preserved).
//! - **Partitions** make [`ChaosNet::send`] refuse the frame entirely —
//!   the caller (the engine's retry queue) keeps it and backs off.
//! - **Queue stalls** targeting a `unit.N` broker queue defer every
//!   channel into unit `N` while the window is open — the virtual-time
//!   analogue of the live broker parking publishers on a stalled queue.
//! - **Crashes** are not network events at all; the net merely reports
//!   which units are due to die via [`ChaosNet::take_due_crashes`] so the
//!   engine can run the crash/recover drill.
//!
//! Loss is *modelled*, never literal: a partition or delay holds frames
//! back, but no frame is silently dropped (a dropped frame would fake a
//! FIFO gap the real transports — TCP, AMQP — never produce). Past the
//! plan's horizon every fault expires, which guarantees the drained
//! schedule terminates.

use crate::delivery::{DataPlane, InFlight};
use crate::layout::JoinerId;
use bistream_types::fault::{mix, FaultPlan};
use bistream_types::punct::RouterId;
use std::collections::VecDeque;

/// Hard cap on how long fault windows are honoured, in steps. A
/// hand-written plan whose window never closes (e.g. `until_step:
/// u64::MAX`) would otherwise wedge [`ChaosNet::deliver_next`]; capping
/// the effective horizon turns "delay forever" into "delay for a bounded
/// eternity", preserving the termination guarantee.
const MAX_HORIZON: u64 = 1 << 20;

/// A pairwise-FIFO network whose schedule and faults are replayable from
/// a [`FaultPlan`].
pub struct ChaosNet<M> {
    plan: FaultPlan,
    horizon: u64,
    step: u64,
    channels: Vec<((RouterId, JoinerId), VecDeque<M>)>,
    pending: usize,
    /// `(unit, at_step)` crash events not yet fired.
    crashes: Vec<(u32, u64)>,
    /// `(unit, from_step, until_step)` stall windows parsed from
    /// `StallQueue` events naming a `unit.N` queue: all channels into the
    /// unit are held while a window is open.
    stalls: Vec<(u32, u64, u64)>,
}

impl<M> ChaosNet<M> {
    /// A network executing `plan`. The plan's crash events are queued for
    /// [`ChaosNet::take_due_crashes`]; everything else is evaluated lazily
    /// per step.
    pub fn new(plan: FaultPlan) -> ChaosNet<M> {
        let horizon = plan.horizon().min(MAX_HORIZON);
        let mut crashes: Vec<(u32, u64)> = plan
            .events
            .iter()
            .filter_map(|e| match e {
                bistream_types::fault::FaultEvent::CrashUnit { unit, at_step } => {
                    Some((*unit, *at_step))
                }
                _ => None,
            })
            .collect();
        crashes.sort_by_key(|&(unit, at)| (at, unit));
        let stalls: Vec<(u32, u64, u64)> = plan
            .events
            .iter()
            .filter_map(|e| match e {
                bistream_types::fault::FaultEvent::StallQueue { queue, from_step, until_step } => {
                    let unit = queue.strip_prefix("unit.")?.parse::<u32>().ok()?;
                    Some((unit, *from_step, *until_step))
                }
                _ => None,
            })
            .collect();
        ChaosNet { plan, horizon, step: 0, channels: Vec::new(), pending: 0, crashes, stalls }
    }

    /// Whether a `unit.N` stall window holds deliveries into `unit` at
    /// `step`.
    fn unit_stalled(&self, unit: u32, step: u64) -> bool {
        self.stalls.iter().any(|&(u, from, until)| u == unit && (from..until).contains(&step))
    }

    /// The current schedule step (advances on every delivery attempt).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Fast-forward the schedule to `step` (never rewinds). Used to jump
    /// to a retry-backoff due time when nothing else is deliverable.
    pub fn advance_to(&mut self, step: u64) {
        self.step = self.step.max(step);
    }

    /// The plan driving this network.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the `router → unit` channel accepts frames at the current
    /// step (i.e. no partition window covers it). Callers that must not
    /// lose a frame check this before [`ChaosNet::send`].
    pub fn channel_open(&self, router: RouterId, unit: u32) -> bool {
        self.step > self.horizon || !self.plan.partitions_channel(router, unit, self.step)
    }

    /// Enqueue a frame from `router` to `dest`, unless the channel is
    /// partitioned at the current step — then the frame is refused
    /// (returns `false`) and the caller must retry later.
    #[must_use]
    pub fn send(&mut self, router: RouterId, dest: JoinerId, msg: M) -> bool {
        if !self.channel_open(router, dest.0) {
            return false;
        }
        let key = (router, dest);
        match self.channels.iter_mut().find(|(k, _)| *k == key) {
            Some((_, q)) => q.push_back(msg),
            None => {
                let mut q = VecDeque::new();
                q.push_back(msg);
                self.channels.push((key, q));
            }
        }
        self.pending += 1;
        true
    }

    /// Deliver one frame. Advances the step, skips channels whose delay
    /// window is open, and picks among the eligible channels with
    /// `mix(seed, step)`. Once the step passes the plan's horizon all
    /// delay windows are void, so this terminates whenever frames are
    /// pending.
    pub fn deliver_next(&mut self) -> Option<InFlight<M>> {
        if self.pending == 0 {
            return None;
        }
        loop {
            self.step += 1;
            let past_horizon = self.step > self.horizon;
            let eligible: Vec<usize> = self
                .channels
                .iter()
                .enumerate()
                .filter(|(_, ((router, dest), q))| {
                    !q.is_empty()
                        && (past_horizon
                            || (!self.plan.delays_channel(*router, dest.0, self.step)
                                && !self.unit_stalled(dest.0, self.step)))
                })
                .map(|(i, _)| i)
                .collect();
            if eligible.is_empty() {
                // Every pending channel is inside a delay window; let the
                // step tick until one closes (bounded by the horizon).
                continue;
            }
            let pick = eligible[(mix(self.plan.seed, self.step) % eligible.len() as u64) as usize];
            let ((_, dest), q) = &mut self.channels[pick];
            let dest = *dest;
            if let Some(msg) = q.pop_front() {
                self.pending -= 1;
                return Some(InFlight { dest, msg });
            }
        }
    }

    /// Crash events whose step has arrived, in `(at_step, unit)` order.
    /// Each fires exactly once.
    pub fn take_due_crashes(&mut self) -> Vec<u32> {
        let step = self.step;
        let mut due = Vec::new();
        self.crashes.retain(|&(unit, at)| {
            if at <= step {
                due.push(unit);
                false
            } else {
                true
            }
        });
        due
    }

    /// Crash events that have not fired yet.
    pub fn crashes_pending(&self) -> usize {
        self.crashes.len()
    }

    /// Frames currently in flight.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Drop all channels to a unit (its in-flight traffic is lost with
    /// it; recovery re-sends from the engine's log).
    pub fn forget_unit(&mut self, unit: JoinerId) {
        let pending = &mut self.pending;
        self.channels.retain(|((_, dest), q)| {
            if *dest == unit {
                *pending -= q.len();
                false
            } else {
                true
            }
        });
    }
}

/// Fault injection rides the [`DataPlane`] seam: partitions refuse
/// [`send`](DataPlane::send), delay/stall windows act inside
/// [`deliver_next`](DataPlane::deliver_next), and crash events surface
/// out-of-band via [`ChaosNet::take_due_crashes`]. Any backend driven
/// through the trait therefore gets the whole fault family for free.
impl<M> DataPlane<M> for ChaosNet<M> {
    fn send(&mut self, router: RouterId, dest: JoinerId, msg: M) -> bool {
        ChaosNet::send(self, router, dest, msg)
    }

    fn deliver_next(&mut self) -> Option<InFlight<M>> {
        ChaosNet::deliver_next(self)
    }

    fn pending(&self) -> usize {
        ChaosNet::pending(self)
    }

    fn drain(&mut self, unit: JoinerId) -> Vec<M> {
        // Shutdown-path drain ignores open delay/stall windows (the run
        // is over; holding frames would strand them) but keeps
        // per-channel FIFO, so the unit's final punctuation still lands
        // behind every frame it fences.
        let mut out = Vec::new();
        let pending = &mut self.pending;
        self.channels.retain_mut(|((_, dest), q)| {
            if *dest == unit {
                *pending -= q.len();
                out.extend(q.drain(..));
                false
            } else {
                true
            }
        });
        out
    }

    fn forget_unit(&mut self, unit: JoinerId) {
        ChaosNet::forget_unit(self, unit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::fault::{ChaosProfile, FaultEvent};
    use bistream_types::punct::Punctuation;
    use bistream_types::punct::StreamMessage;

    fn punct(router: RouterId, seq: u64) -> StreamMessage {
        StreamMessage::Punct(Punctuation { router, seq })
    }

    fn plan_with(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { seed: 9, scenario: "test".into(), events }
    }

    #[test]
    fn identical_plans_replay_identical_schedules() {
        let profile = ChaosProfile::new("mixed", vec![0, 1], vec![0, 1]);
        let plan = FaultPlan::generate(3, &profile);
        let run = |plan: &FaultPlan| {
            let mut net: ChaosNet<StreamMessage> = ChaosNet::new(plan.clone());
            for seq in 1..=40u64 {
                for r in 0..2 {
                    for j in 0..2 {
                        let _ = net.send(r, JoinerId(j), punct(r, seq));
                    }
                }
            }
            let mut order = Vec::new();
            while let Some(m) = net.deliver_next() {
                order.push((m.msg.router(), m.dest.0, m.msg.seq()));
            }
            order
        };
        assert_eq!(run(&plan), run(&plan));
    }

    #[test]
    fn pairwise_fifo_survives_delays() {
        let plan = plan_with(vec![FaultEvent::DelayChannel {
            router: 0,
            unit: 0,
            from_step: 1,
            until_step: 30,
        }]);
        let mut net: ChaosNet<StreamMessage> = ChaosNet::new(plan);
        for seq in 1..=20u64 {
            assert!(net.send(0, JoinerId(0), punct(0, seq)));
            assert!(net.send(1, JoinerId(0), punct(1, seq)));
        }
        let mut last: std::collections::HashMap<(RouterId, JoinerId), u64> = Default::default();
        let mut delivered = 0;
        while let Some(m) = net.deliver_next() {
            let key = (m.msg.router(), m.dest);
            if let Some(p) = last.insert(key, m.msg.seq()) {
                assert!(m.msg.seq() > p, "FIFO violated on {key:?}");
            }
            delivered += 1;
        }
        assert_eq!(delivered, 40, "delays must defer frames, never drop them");
    }

    #[test]
    fn delayed_channel_is_held_while_window_open() {
        let plan = plan_with(vec![FaultEvent::DelayChannel {
            router: 0,
            unit: 0,
            from_step: 1,
            until_step: 10,
        }]);
        let mut net: ChaosNet<StreamMessage> = ChaosNet::new(plan);
        let _ = net.send(0, JoinerId(0), punct(0, 1));
        let _ = net.send(1, JoinerId(1), punct(1, 1));
        // While both channels are pending and one is delayed, the open
        // channel is the only one that can deliver within the window.
        let first = net.deliver_next().expect("open channel delivers");
        assert_eq!(first.dest, JoinerId(1));
        assert!(net.step() <= 10);
        // The held frame still arrives (after the window, if need be).
        let second = net.deliver_next().expect("held frame eventually delivers");
        assert_eq!(second.dest, JoinerId(0));
    }

    #[test]
    fn unit_queue_stalls_hold_deliveries_into_the_unit() {
        let plan = plan_with(vec![FaultEvent::StallQueue {
            queue: "unit.0".into(),
            from_step: 1,
            until_step: 10,
        }]);
        let mut net: ChaosNet<StreamMessage> = ChaosNet::new(plan);
        let _ = net.send(0, JoinerId(0), punct(0, 1));
        let _ = net.send(0, JoinerId(1), punct(0, 1));
        // While the stall window is open, only the unstalled unit's
        // channel is eligible.
        let first = net.deliver_next().expect("unstalled unit delivers first");
        assert_eq!(first.dest, JoinerId(1));
        assert!(net.step() < 10);
        // The held frame still arrives once the window closes.
        let second = net.deliver_next().expect("held frame delivers after the window");
        assert_eq!(second.dest, JoinerId(0));
        assert!(net.step() >= 10);
    }

    #[test]
    fn partitioned_sends_are_refused_then_accepted() {
        let plan = plan_with(vec![FaultEvent::Partition {
            router: 0,
            unit: 0,
            from_step: 0,
            until_step: 5,
        }]);
        let mut net: ChaosNet<StreamMessage> = ChaosNet::new(plan);
        assert!(!net.send(0, JoinerId(0), punct(0, 1)), "partitioned send must refuse");
        assert!(net.send(0, JoinerId(1), punct(0, 1)), "other channels unaffected");
        net.advance_to(6);
        assert!(net.send(0, JoinerId(0), punct(0, 1)), "partition heals after window");
    }

    #[test]
    fn crashes_fire_once_in_step_order() {
        let plan = plan_with(vec![
            FaultEvent::CrashUnit { unit: 1, at_step: 8 },
            FaultEvent::CrashUnit { unit: 0, at_step: 3 },
        ]);
        let mut net: ChaosNet<StreamMessage> = ChaosNet::new(plan);
        assert!(net.take_due_crashes().is_empty());
        net.advance_to(4);
        assert_eq!(net.take_due_crashes(), vec![0]);
        net.advance_to(100);
        assert_eq!(net.take_due_crashes(), vec![1]);
        assert!(net.take_due_crashes().is_empty(), "each crash fires exactly once");
        assert_eq!(net.crashes_pending(), 0);
    }

    #[test]
    fn schedule_terminates_past_the_horizon() {
        // A delay window covering every step of the horizon cannot wedge
        // the net: past the horizon all faults are void.
        let plan = plan_with(vec![FaultEvent::DelayChannel {
            router: 0,
            unit: 0,
            from_step: 0,
            until_step: u64::MAX,
        }]);
        let mut net: ChaosNet<StreamMessage> = ChaosNet::new(plan);
        let _ = net.send(0, JoinerId(0), punct(0, 1));
        assert!(net.deliver_next().is_some());
        assert_eq!(net.pending(), 0);
    }
}
