//! Delta-debugging minimisation of failing fault plans.
//!
//! A generated plan that trips the auditor usually carries more fault
//! events than the failure needs — a crash plus three delay windows when
//! the crash alone reproduces it. [`minimize`] runs the classic *ddmin*
//! loop over the plan's event list: repeatedly re-execute the trial with
//! subsets of the events, keep any smaller subset that still fails, and
//! tighten the granularity until no single event can be removed. The
//! result is the artifact worth committing: a 1–2 event plan a human can
//! actually read.
//!
//! The oracle is a caller-supplied closure (`still_fails`), so the
//! minimiser is independent of how trials run — the exploration runner
//! passes a full engine drill, the unit tests pass synthetic predicates.

use bistream_types::fault::{FaultEvent, FaultPlan};

/// Shrink `plan` to a 1-minimal failing subset of its events.
///
/// `still_fails` must return `true` when the candidate plan still
/// reproduces the original failure. It is assumed deterministic (chaos
/// trials are — that is the whole point of the seeded scheduler); a
/// flaky oracle yields a valid but possibly non-minimal result.
///
/// The returned plan keeps the original seed and scenario so the
/// artifact still records where the failure came from. If the failure
/// reproduces with *no* fault events at all, the returned plan is empty
/// — a loud hint that the bug is in the engine, not fault-induced.
pub fn minimize<F>(plan: &FaultPlan, mut still_fails: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let rebuild = |events: &[FaultEvent]| FaultPlan {
        seed: plan.seed,
        scenario: plan.scenario.clone(),
        events: events.to_vec(),
    };

    let mut events = plan.events.clone();
    // Fast path: the failure is not fault-induced at all.
    if still_fails(&rebuild(&[])) {
        return rebuild(&[]);
    }

    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = events.clone();
            candidate.drain(start..end);
            if !candidate.is_empty() && still_fails(&rebuild(&candidate)) {
                events = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }
        if n >= events.len() {
            break;
        }
        n = (n * 2).min(events.len());
    }
    // Final sweep: drop any single event that is individually removable
    // (ddmin at n == len can miss late singletons after reductions).
    let mut i = 0;
    while events.len() > 1 && i < events.len() {
        let mut candidate = events.clone();
        candidate.remove(i);
        if still_fails(&rebuild(&candidate)) {
            events = candidate;
        } else {
            i += 1;
        }
    }
    rebuild(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(unit: u32, at_step: u64) -> FaultEvent {
        FaultEvent::CrashUnit { unit, at_step }
    }

    fn delay(router: u32, unit: u32) -> FaultEvent {
        FaultEvent::DelayChannel { router, unit, from_step: 1, until_step: 8 }
    }

    fn plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { seed: 11, scenario: "unit".into(), events }
    }

    #[test]
    fn shrinks_to_the_single_culprit_event() {
        let p = plan(vec![delay(0, 0), crash(1, 40), delay(1, 1), delay(0, 1), crash(0, 90)]);
        // Failure reproduces iff the plan still crashes unit 1.
        let min = minimize(&p, |cand| {
            cand.events.iter().any(|e| matches!(e, FaultEvent::CrashUnit { unit: 1, .. }))
        });
        assert_eq!(min.events, vec![crash(1, 40)]);
        assert_eq!(min.seed, p.seed);
        assert_eq!(min.scenario, p.scenario);
    }

    #[test]
    fn keeps_a_required_pair_together() {
        let p = plan(vec![delay(0, 0), crash(0, 10), delay(1, 0), crash(1, 20), delay(0, 1)]);
        // Failure needs BOTH crashes.
        let min = minimize(&p, |cand| {
            let crashes =
                cand.events.iter().filter(|e| matches!(e, FaultEvent::CrashUnit { .. })).count();
            crashes == 2
        });
        assert_eq!(min.events, vec![crash(0, 10), crash(1, 20)]);
    }

    #[test]
    fn fault_independent_failures_minimize_to_the_empty_plan() {
        let p = plan(vec![delay(0, 0), crash(0, 10)]);
        let min = minimize(&p, |_| true);
        assert!(min.events.is_empty());
    }

    #[test]
    fn counts_oracle_calls_sanely() {
        // ddmin on a 16-event plan with one culprit should need far
        // fewer trials than the 2^16 subsets.
        let mut events: Vec<FaultEvent> = (0..15u32).map(|i| delay(i, i)).collect();
        events.push(crash(7, 99));
        let p = plan(events);
        let mut calls = 0usize;
        let min = minimize(&p, |cand| {
            calls += 1;
            cand.events.iter().any(|e| matches!(e, FaultEvent::CrashUnit { .. }))
        });
        assert_eq!(min.events, vec![crash(7, 99)]);
        assert!(calls < 200, "ddmin ran {calls} trials");
    }
}
