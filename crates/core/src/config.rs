//! Engine configuration.

use bistream_types::error::{Error, Result};
use bistream_types::predicate::JoinPredicate;
use bistream_types::time::Ts;
use bistream_types::window::WindowSpec;
use serde::{Deserialize, Serialize};

/// How the router distributes tuples over the biclique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Store on a uniformly random unit of the own side; broadcast the
    /// join copy to *every* unit of the opposite side. Correct for any
    /// predicate; per-tuple fan-out is `1 + |opposite side|`.
    Random,
    /// Content-sensitive: hash the join key to one unit on each side.
    /// Only valid for equi predicates; fan-out is 2 but a skewed key
    /// distribution concentrates load.
    Hash,
    /// The paper's hybrid: each side is split into `subgroups` subgroups;
    /// the key hash picks the subgroup (content-sensitive across
    /// subgroups), storage lands on a random unit *within* the subgroup,
    /// and the join copy is broadcast to the matching subgroup of the
    /// opposite side. Only valid for equi predicates; fan-out is
    /// `1 + |opposite side| / subgroups`, skew is diluted over a subgroup.
    ContRand {
        /// Number of subgroups per side (`d` in the model).
        subgroups: usize,
    },
    /// Self-tuning ContRand ([`core::adaptive`](crate::adaptive)): a
    /// hot-key sketch in the router hot path classifies keys into a hot
    /// tier (widened fan-out: store anywhere on the own side, probe the
    /// whole opposite side) and a cold tier (ContRand under the current
    /// `d`), and a periodic tuning step re-tunes `d` from the per-unit
    /// load series. Strategy switches install as punctuation-fenced epoch
    /// changes. Only valid for equi predicates. Tuning knobs live in
    /// [`EngineConfig::adaptive`].
    Adaptive {
        /// Initial number of subgroups per side (the epoch-0 `d`).
        subgroups: usize,
    },
}

impl RoutingStrategy {
    /// Is this strategy applicable to `predicate`?
    pub fn supports(&self, predicate: &JoinPredicate) -> bool {
        match self {
            RoutingStrategy::Random => true,
            RoutingStrategy::Hash
            | RoutingStrategy::ContRand { .. }
            | RoutingStrategy::Adaptive { .. } => predicate.is_equi(),
        }
    }
}

/// Tuning knobs of the adaptive router (see
/// [`core::adaptive`](crate::adaptive)). All thresholds are integers so
/// configs stay `Eq`-comparable and byte-stable as JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveTuning {
    /// Punctuation rounds between tuning steps.
    pub tune_every_puncts: u32,
    /// Maximum hot-tier size per plan.
    pub hot_capacity: usize,
    /// Minimum share of the observed stream (parts per million) for a
    /// key to enter the hot tier.
    pub hot_min_share_ppm: u32,
    /// Widen subgroups (halve `d`) when the max/mean per-unit store load
    /// reaches this percentage.
    pub widen_above_pct: u32,
    /// Narrow subgroups (double `d`) when the max/mean per-unit store
    /// load falls to this percentage.
    pub narrow_below_pct: u32,
}

impl Default for AdaptiveTuning {
    fn default() -> AdaptiveTuning {
        AdaptiveTuning {
            tune_every_puncts: 4,
            hot_capacity: 16,
            hot_min_share_ppm: 20_000,
            widen_above_pct: 200,
            narrow_below_pct: 120,
        }
    }
}

/// Full configuration of a biclique engine instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Initial number of R-side joiners (`n`).
    pub r_joiners: usize,
    /// Initial number of S-side joiners (`m`).
    pub s_joiners: usize,
    /// The join predicate.
    pub predicate: JoinPredicate,
    /// The window specification.
    pub window: WindowSpec,
    /// Routing strategy.
    pub routing: RoutingStrategy,
    /// Archive period `P` of the chained index, in ms.
    pub archive_period_ms: Ts,
    /// Punctuation interval of the ordering protocol, in ms.
    pub punctuation_interval_ms: Ts,
    /// Whether joiners run the order-consistent protocol. Disabling it
    /// exposes the duplicate/missed-result races (experiment E7) and
    /// removes the punctuation wait from the latency path.
    pub ordering: bool,
    /// Micro-batch size: how many tuple copies a router accumulates per
    /// destination before flushing one [`bistream_types::TupleBatch`]
    /// frame (pending batches also flush on every punctuation, so a
    /// punctuation never overtakes the data it covers). `1` reproduces
    /// per-tuple framing exactly; larger values amortise framing, queue
    /// hand-off and index-probe overhead without touching sequence
    /// assignment or results. Old configs without the field deserialize
    /// to `1`.
    #[serde(default = "default_batch_size")]
    pub batch_size: usize,
    /// Tuning knobs of [`RoutingStrategy::Adaptive`]; ignored by the
    /// static strategies. Old configs without the field deserialize to
    /// the defaults.
    #[serde(default)]
    pub adaptive: AdaptiveTuning,
    /// Seed for the router's random placement decisions.
    pub seed: u64,
}

fn default_batch_size() -> usize {
    1
}

impl EngineConfig {
    /// A small sane default: 2×2 units, equi-join on attribute 0, 10 s
    /// window, hash routing.
    pub fn default_equi() -> EngineConfig {
        EngineConfig {
            r_joiners: 2,
            s_joiners: 2,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(10_000),
            routing: RoutingStrategy::Hash,
            archive_period_ms: 1_000,
            punctuation_interval_ms: 20,
            ordering: true,
            batch_size: 1,
            adaptive: AdaptiveTuning::default(),
            seed: 0xB1C1,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.r_joiners == 0 || self.s_joiners == 0 {
            return Err(Error::Config("each side needs at least one joiner".into()));
        }
        if !self.routing.supports(&self.predicate) {
            return Err(Error::Config(format!(
                "routing {:?} requires an equi predicate, got {}",
                self.routing, self.predicate
            )));
        }
        if let RoutingStrategy::ContRand { subgroups } | RoutingStrategy::Adaptive { subgroups } =
            self.routing
        {
            if subgroups == 0 {
                return Err(Error::Config("subgrouped routing needs at least one subgroup".into()));
            }
            if subgroups > self.r_joiners || subgroups > self.s_joiners {
                return Err(Error::Config(format!(
                    "{:?} with {subgroups} subgroups needs at least that many joiners per side \
                     (have {}×{})",
                    self.routing, self.r_joiners, self.s_joiners
                )));
            }
        }
        if let RoutingStrategy::Adaptive { .. } = self.routing {
            if self.adaptive.tune_every_puncts == 0 {
                return Err(Error::Config(
                    "adaptive routing needs a positive tuning interval".into(),
                ));
            }
            if self.adaptive.hot_capacity == 0 {
                return Err(Error::Config("adaptive routing needs a positive hot capacity".into()));
            }
        }
        if self.punctuation_interval_ms == 0 {
            return Err(Error::Config("punctuation interval must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(Error::Config("batch size must be at least 1".into()));
        }
        if self.batch_size > bistream_types::batch::MAX_BATCH_LEN {
            return Err(Error::Config(format!(
                "batch size {} exceeds the frame limit {}",
                self.batch_size,
                bistream_types::batch::MAX_BATCH_LEN
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::predicate::CmpOp;

    #[test]
    fn default_is_valid() {
        assert!(EngineConfig::default_equi().validate().is_ok());
    }

    #[test]
    fn hash_routing_rejects_non_equi() {
        let mut c = EngineConfig::default_equi();
        c.predicate = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.0 };
        assert!(c.validate().is_err());
        c.routing = RoutingStrategy::Random;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn contrand_bounds_subgroups() {
        let mut c = EngineConfig::default_equi();
        c.routing = RoutingStrategy::ContRand { subgroups: 2 };
        assert!(c.validate().is_ok());
        c.routing = RoutingStrategy::ContRand { subgroups: 3 };
        assert!(c.validate().is_err(), "more subgroups than joiners");
        c.routing = RoutingStrategy::ContRand { subgroups: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_joiners_rejected() {
        let mut c = EngineConfig::default_equi();
        c.r_joiners = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serde_round_trips() {
        // Experiment configs are persisted as JSON next to results; the
        // round trip must be lossless.
        let mut c = EngineConfig::default_equi();
        c.routing = RoutingStrategy::ContRand { subgroups: 2 };
        c.window = WindowSpec::FullHistory;
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.routing, c.routing);
        assert_eq!(back.window, c.window);
        assert_eq!(back.predicate, c.predicate);
        assert_eq!(back.seed, c.seed);
    }

    #[test]
    fn batch_size_bounds_enforced() {
        let mut c = EngineConfig::default_equi();
        c.batch_size = 0;
        assert!(c.validate().is_err(), "zero batch");
        c.batch_size = bistream_types::batch::MAX_BATCH_LEN + 1;
        assert!(c.validate().is_err(), "overflows the frame count field");
        c.batch_size = 64;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn configs_without_batch_size_deserialize_to_one() {
        // Configs persisted before micro-batching existed must stay
        // loadable — and must reproduce per-tuple behaviour.
        let mut v = serde_json::to_value(EngineConfig::default_equi()).unwrap();
        v.as_object_mut().unwrap().remove("batch_size");
        let back: EngineConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back.batch_size, 1);
    }

    #[test]
    fn adaptive_bounds_subgroups_and_tuning() {
        let mut c = EngineConfig::default_equi();
        c.routing = RoutingStrategy::Adaptive { subgroups: 2 };
        assert!(c.validate().is_ok());
        c.routing = RoutingStrategy::Adaptive { subgroups: 3 };
        assert!(c.validate().is_err(), "more subgroups than joiners");
        c.routing = RoutingStrategy::Adaptive { subgroups: 0 };
        assert!(c.validate().is_err());
        c.routing = RoutingStrategy::Adaptive { subgroups: 1 };
        c.adaptive.tune_every_puncts = 0;
        assert!(c.validate().is_err(), "zero tuning interval");
        c.adaptive.tune_every_puncts = 4;
        c.adaptive.hot_capacity = 0;
        assert!(c.validate().is_err(), "zero hot capacity");
    }

    #[test]
    fn adaptive_requires_equi_predicate() {
        let mut c = EngineConfig::default_equi();
        c.routing = RoutingStrategy::Adaptive { subgroups: 1 };
        c.predicate = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn configs_without_adaptive_tuning_deserialize_to_defaults() {
        // Configs persisted before the adaptive router existed must stay
        // loadable.
        let mut v = serde_json::to_value(EngineConfig::default_equi()).unwrap();
        v.as_object_mut().unwrap().remove("adaptive");
        let back: EngineConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back.adaptive, AdaptiveTuning::default());
    }

    #[test]
    fn theta_predicates_route_random_only() {
        let p = JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Lt };
        assert!(RoutingStrategy::Random.supports(&p));
        assert!(!RoutingStrategy::Hash.supports(&p));
        assert!(!RoutingStrategy::ContRand { subgroups: 2 }.supports(&p));
        assert!(!RoutingStrategy::Adaptive { subgroups: 2 }.supports(&p));
    }
}
