//! Engine configuration.

use bistream_types::error::{Error, Result};
use bistream_types::predicate::JoinPredicate;
use bistream_types::time::Ts;
use bistream_types::window::WindowSpec;
use serde::{Deserialize, Serialize};

/// How the router distributes tuples over the biclique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Store on a uniformly random unit of the own side; broadcast the
    /// join copy to *every* unit of the opposite side. Correct for any
    /// predicate; per-tuple fan-out is `1 + |opposite side|`.
    Random,
    /// Content-sensitive: hash the join key to one unit on each side.
    /// Only valid for equi predicates; fan-out is 2 but a skewed key
    /// distribution concentrates load.
    Hash,
    /// The paper's hybrid: each side is split into `subgroups` subgroups;
    /// the key hash picks the subgroup (content-sensitive across
    /// subgroups), storage lands on a random unit *within* the subgroup,
    /// and the join copy is broadcast to the matching subgroup of the
    /// opposite side. Only valid for equi predicates; fan-out is
    /// `1 + |opposite side| / subgroups`, skew is diluted over a subgroup.
    ContRand {
        /// Number of subgroups per side (`d` in the model).
        subgroups: usize,
    },
}

impl RoutingStrategy {
    /// Is this strategy applicable to `predicate`?
    pub fn supports(&self, predicate: &JoinPredicate) -> bool {
        match self {
            RoutingStrategy::Random => true,
            RoutingStrategy::Hash | RoutingStrategy::ContRand { .. } => predicate.is_equi(),
        }
    }
}

/// Full configuration of a biclique engine instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Initial number of R-side joiners (`n`).
    pub r_joiners: usize,
    /// Initial number of S-side joiners (`m`).
    pub s_joiners: usize,
    /// The join predicate.
    pub predicate: JoinPredicate,
    /// The window specification.
    pub window: WindowSpec,
    /// Routing strategy.
    pub routing: RoutingStrategy,
    /// Archive period `P` of the chained index, in ms.
    pub archive_period_ms: Ts,
    /// Punctuation interval of the ordering protocol, in ms.
    pub punctuation_interval_ms: Ts,
    /// Whether joiners run the order-consistent protocol. Disabling it
    /// exposes the duplicate/missed-result races (experiment E7) and
    /// removes the punctuation wait from the latency path.
    pub ordering: bool,
    /// Micro-batch size: how many tuple copies a router accumulates per
    /// destination before flushing one [`bistream_types::TupleBatch`]
    /// frame (pending batches also flush on every punctuation, so a
    /// punctuation never overtakes the data it covers). `1` reproduces
    /// per-tuple framing exactly; larger values amortise framing, queue
    /// hand-off and index-probe overhead without touching sequence
    /// assignment or results. Old configs without the field deserialize
    /// to `1`.
    #[serde(default = "default_batch_size")]
    pub batch_size: usize,
    /// Seed for the router's random placement decisions.
    pub seed: u64,
}

fn default_batch_size() -> usize {
    1
}

impl EngineConfig {
    /// A small sane default: 2×2 units, equi-join on attribute 0, 10 s
    /// window, hash routing.
    pub fn default_equi() -> EngineConfig {
        EngineConfig {
            r_joiners: 2,
            s_joiners: 2,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(10_000),
            routing: RoutingStrategy::Hash,
            archive_period_ms: 1_000,
            punctuation_interval_ms: 20,
            ordering: true,
            batch_size: 1,
            seed: 0xB1C1,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.r_joiners == 0 || self.s_joiners == 0 {
            return Err(Error::Config("each side needs at least one joiner".into()));
        }
        if !self.routing.supports(&self.predicate) {
            return Err(Error::Config(format!(
                "routing {:?} requires an equi predicate, got {}",
                self.routing, self.predicate
            )));
        }
        if let RoutingStrategy::ContRand { subgroups } = self.routing {
            if subgroups == 0 {
                return Err(Error::Config("ContRand needs at least one subgroup".into()));
            }
            if subgroups > self.r_joiners || subgroups > self.s_joiners {
                return Err(Error::Config(format!(
                    "ContRand with {subgroups} subgroups needs at least that many joiners per side \
                     (have {}×{})",
                    self.r_joiners, self.s_joiners
                )));
            }
        }
        if self.punctuation_interval_ms == 0 {
            return Err(Error::Config("punctuation interval must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(Error::Config("batch size must be at least 1".into()));
        }
        if self.batch_size > bistream_types::batch::MAX_BATCH_LEN {
            return Err(Error::Config(format!(
                "batch size {} exceeds the frame limit {}",
                self.batch_size,
                bistream_types::batch::MAX_BATCH_LEN
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::predicate::CmpOp;

    #[test]
    fn default_is_valid() {
        assert!(EngineConfig::default_equi().validate().is_ok());
    }

    #[test]
    fn hash_routing_rejects_non_equi() {
        let mut c = EngineConfig::default_equi();
        c.predicate = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.0 };
        assert!(c.validate().is_err());
        c.routing = RoutingStrategy::Random;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn contrand_bounds_subgroups() {
        let mut c = EngineConfig::default_equi();
        c.routing = RoutingStrategy::ContRand { subgroups: 2 };
        assert!(c.validate().is_ok());
        c.routing = RoutingStrategy::ContRand { subgroups: 3 };
        assert!(c.validate().is_err(), "more subgroups than joiners");
        c.routing = RoutingStrategy::ContRand { subgroups: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_joiners_rejected() {
        let mut c = EngineConfig::default_equi();
        c.r_joiners = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serde_round_trips() {
        // Experiment configs are persisted as JSON next to results; the
        // round trip must be lossless.
        let mut c = EngineConfig::default_equi();
        c.routing = RoutingStrategy::ContRand { subgroups: 2 };
        c.window = WindowSpec::FullHistory;
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.routing, c.routing);
        assert_eq!(back.window, c.window);
        assert_eq!(back.predicate, c.predicate);
        assert_eq!(back.seed, c.seed);
    }

    #[test]
    fn batch_size_bounds_enforced() {
        let mut c = EngineConfig::default_equi();
        c.batch_size = 0;
        assert!(c.validate().is_err(), "zero batch");
        c.batch_size = bistream_types::batch::MAX_BATCH_LEN + 1;
        assert!(c.validate().is_err(), "overflows the frame count field");
        c.batch_size = 64;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn configs_without_batch_size_deserialize_to_one() {
        // Configs persisted before micro-batching existed must stay
        // loadable — and must reproduce per-tuple behaviour.
        let mut v = serde_json::to_value(EngineConfig::default_equi()).unwrap();
        v.as_object_mut().unwrap().remove("batch_size");
        let back: EngineConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back.batch_size, 1);
    }

    #[test]
    fn theta_predicates_route_random_only() {
        let p = JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Lt };
        assert!(RoutingStrategy::Random.supports(&p));
        assert!(!RoutingStrategy::Hash.supports(&p));
        assert!(!RoutingStrategy::ContRand { subgroups: 2 }.supports(&p));
    }
}
