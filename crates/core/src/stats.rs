//! Engine-wide observability.

use bistream_types::metrics::{Counter, Histogram, HistogramSnapshot};
use bistream_types::registry::MetricsRegistry;
use serde::Serialize;
use std::sync::Arc;

/// Shared counters for one engine instance (live or simulated). All fields
/// are lock-free; the live runtime's threads bump them directly. The
/// primitives are `Arc`-wrapped so the same handles can also be registered
/// in a [`MetricsRegistry`] (see [`EngineStats::register_into`]).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Tuples ingested into the engine.
    pub ingested: Arc<Counter>,
    /// Join results emitted (across all joiners).
    pub results: Arc<Counter>,
    /// Data copies sent by routers (communication cost).
    pub copies: Arc<Counter>,
    /// Punctuation messages sent.
    pub punctuations: Arc<Counter>,
    /// Result latency in ms (event-time ingest → emit).
    pub latency_ms: Arc<Histogram>,
}

impl EngineStats {
    /// A fresh stats block, shared.
    pub fn shared() -> Arc<EngineStats> {
        Arc::new(EngineStats::default())
    }

    /// Expose the engine-wide series in `registry` under `labels`
    /// (typically `engine="sim"` / `engine="live"`), using the same metric
    /// names as the legacy [`EngineSnapshot::prometheus_text`] endpoint.
    pub fn register_into(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.register_counter(
            bistream_types::metric_names::TUPLES_INGESTED_TOTAL,
            labels,
            &self.ingested,
        );
        registry.register_counter(
            bistream_types::metric_names::JOIN_RESULTS_TOTAL,
            labels,
            &self.results,
        );
        registry.register_counter(bistream_types::metric_names::COPIES_TOTAL, labels, &self.copies);
        registry.register_counter(
            bistream_types::metric_names::PUNCTUATIONS_TOTAL,
            labels,
            &self.punctuations,
        );
        registry.register_histogram(
            bistream_types::metric_names::RESULT_LATENCY_MS,
            labels,
            &self.latency_ms,
        );
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            ingested: self.ingested.get(),
            results: self.results.get(),
            copies: self.copies.get(),
            punctuations: self.punctuations.get(),
            latency: self.latency_ms.snapshot(),
        }
    }
}

/// Serializable summary of [`EngineStats`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineSnapshot {
    /// Tuples ingested.
    pub ingested: u64,
    /// Join results emitted.
    pub results: u64,
    /// Data copies sent (communication cost).
    pub copies: u64,
    /// Punctuations sent.
    pub punctuations: u64,
    /// Latency summary.
    pub latency: HistogramSnapshot,
}

impl EngineSnapshot {
    /// Mean data copies per ingested tuple — the communication-cost figure
    /// compared against the analytic `p/2`, `√p`, `p/(2d)` in E11.
    pub fn copies_per_tuple(&self) -> f64 {
        if self.ingested == 0 {
            0.0
        } else {
            self.copies as f64 / self.ingested as f64
        }
    }

    /// Render in the Prometheus text exposition format, with an optional
    /// `engine` label — the scrape endpoint payload an operator would
    /// point their monitoring at (the role the RabbitMQ management API /
    /// Heapster played in the original deployments). Formatting goes
    /// through [`bistream_types::telemetry`], the single exposition-format
    /// emitter.
    pub fn prometheus_text(&self, engine_label: &str) -> String {
        let engine_labels = [("engine", engine_label)];
        let labels: &[(&str, &str)] = if engine_label.is_empty() { &[] } else { &engine_labels };
        let mut out = String::new();
        let mut metric = |name: &str, help: &str, kind: &str, value: f64| {
            bistream_types::telemetry::write_sample(&mut out, name, help, kind, labels, value);
        };
        metric(
            bistream_types::metric_names::TUPLES_INGESTED_TOTAL,
            "Tuples ingested",
            "counter",
            self.ingested as f64,
        );
        metric(
            bistream_types::metric_names::JOIN_RESULTS_TOTAL,
            "Join results emitted",
            "counter",
            self.results as f64,
        );
        metric(
            bistream_types::metric_names::COPIES_TOTAL,
            "Data copies routed",
            "counter",
            self.copies as f64,
        );
        metric(
            bistream_types::metric_names::PUNCTUATIONS_TOTAL,
            "Punctuation messages sent",
            "counter",
            self.punctuations as f64,
        );
        metric(
            bistream_types::metric_names::RESULT_LATENCY_MS_P50,
            "Median result latency",
            "gauge",
            self.latency.p50 as f64,
        );
        metric(
            bistream_types::metric_names::RESULT_LATENCY_MS_P99,
            "99th percentile result latency",
            "gauge",
            self.latency.p99 as f64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = EngineStats::default();
        s.ingested.add(10);
        s.copies.add(35);
        s.results.inc();
        s.latency_ms.record(8);
        let snap = s.snapshot();
        assert_eq!(snap.ingested, 10);
        assert_eq!(snap.results, 1);
        assert_eq!(snap.copies_per_tuple(), 3.5);
        assert_eq!(snap.latency.count, 1);
    }

    #[test]
    fn copies_per_tuple_handles_empty() {
        let snap = EngineStats::default().snapshot();
        assert_eq!(snap.copies_per_tuple(), 0.0);
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let s = EngineStats::default();
        s.ingested.add(3);
        s.results.add(2);
        let text = s.snapshot().prometheus_text("join1");
        assert!(text.contains("# TYPE bistream_tuples_ingested_total counter"));
        assert!(text.contains("bistream_tuples_ingested_total{engine=\"join1\"} 3"));
        assert!(text.contains("bistream_join_results_total{engine=\"join1\"} 2"));
        // Every metric line follows a HELP and TYPE line.
        let metric_lines = text.lines().filter(|l| !l.starts_with('#')).count();
        let help_lines = text.lines().filter(|l| l.starts_with("# HELP")).count();
        assert_eq!(metric_lines, help_lines);
        // No label block when the label is empty.
        let unlabelled = s.snapshot().prometheus_text("");
        assert!(unlabelled.contains("bistream_tuples_ingested_total 3"));
    }

    #[test]
    fn prometheus_text_escapes_engine_label() {
        let text = EngineStats::default().snapshot().prometheus_text("a\"b\\c\nd");
        assert!(text.contains(r#"{engine="a\"b\\c\nd"}"#), "got: {text}");
    }

    #[test]
    fn register_into_shares_the_same_handles() {
        let s = EngineStats::shared();
        let reg = MetricsRegistry::new();
        s.register_into(&reg, &[("engine", "sim")]);
        s.ingested.add(5);
        s.latency_ms.record(7);
        let snap = reg.scrape(0);
        let labels: &[(&str, &str)] = &[("engine", "sim")];
        assert_eq!(
            snap.counter(bistream_types::metric_names::TUPLES_INGESTED_TOTAL, labels),
            Some(5)
        );
        match snap.get(bistream_types::metric_names::RESULT_LATENCY_MS, labels) {
            Some(bistream_types::registry::MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 1)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
