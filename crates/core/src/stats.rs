//! Engine-wide observability.

use bistream_types::metrics::{Counter, Histogram, HistogramSnapshot};
use serde::Serialize;
use std::sync::Arc;

/// Shared counters for one engine instance (live or simulated). All fields
/// are lock-free; the live runtime's threads bump them directly.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Tuples ingested into the engine.
    pub ingested: Counter,
    /// Join results emitted (across all joiners).
    pub results: Counter,
    /// Data copies sent by routers (communication cost).
    pub copies: Counter,
    /// Punctuation messages sent.
    pub punctuations: Counter,
    /// Result latency in ms (event-time ingest → emit).
    pub latency_ms: Histogram,
}

impl EngineStats {
    /// A fresh stats block, shared.
    pub fn shared() -> Arc<EngineStats> {
        Arc::new(EngineStats::default())
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            ingested: self.ingested.get(),
            results: self.results.get(),
            copies: self.copies.get(),
            punctuations: self.punctuations.get(),
            latency: self.latency_ms.snapshot(),
        }
    }
}

/// Serializable summary of [`EngineStats`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineSnapshot {
    /// Tuples ingested.
    pub ingested: u64,
    /// Join results emitted.
    pub results: u64,
    /// Data copies sent (communication cost).
    pub copies: u64,
    /// Punctuations sent.
    pub punctuations: u64,
    /// Latency summary.
    pub latency: HistogramSnapshot,
}

impl EngineSnapshot {
    /// Mean data copies per ingested tuple — the communication-cost figure
    /// compared against the analytic `p/2`, `√p`, `p/(2d)` in E11.
    pub fn copies_per_tuple(&self) -> f64 {
        if self.ingested == 0 {
            0.0
        } else {
            self.copies as f64 / self.ingested as f64
        }
    }

    /// Render in the Prometheus text exposition format, with an optional
    /// `engine` label — the scrape endpoint payload an operator would
    /// point their monitoring at (the role the RabbitMQ management API /
    /// Heapster played in the original deployments).
    pub fn prometheus_text(&self, engine_label: &str) -> String {
        let l = if engine_label.is_empty() {
            String::new()
        } else {
            format!("{{engine=\"{engine_label}\"}}")
        };
        let mut out = String::new();
        let mut metric = |name: &str, help: &str, kind: &str, value: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name}{l} {value}\n"
            ));
        };
        metric("bistream_tuples_ingested_total", "Tuples ingested", "counter", self.ingested.to_string());
        metric("bistream_join_results_total", "Join results emitted", "counter", self.results.to_string());
        metric("bistream_copies_total", "Data copies routed", "counter", self.copies.to_string());
        metric(
            "bistream_punctuations_total",
            "Punctuation messages sent",
            "counter",
            self.punctuations.to_string(),
        );
        metric(
            "bistream_result_latency_ms_p50",
            "Median result latency",
            "gauge",
            self.latency.p50.to_string(),
        );
        metric(
            "bistream_result_latency_ms_p99",
            "99th percentile result latency",
            "gauge",
            self.latency.p99.to_string(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = EngineStats::default();
        s.ingested.add(10);
        s.copies.add(35);
        s.results.inc();
        s.latency_ms.record(8);
        let snap = s.snapshot();
        assert_eq!(snap.ingested, 10);
        assert_eq!(snap.results, 1);
        assert_eq!(snap.copies_per_tuple(), 3.5);
        assert_eq!(snap.latency.count, 1);
    }

    #[test]
    fn copies_per_tuple_handles_empty() {
        let snap = EngineStats::default().snapshot();
        assert_eq!(snap.copies_per_tuple(), 0.0);
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let s = EngineStats::default();
        s.ingested.add(3);
        s.results.add(2);
        let text = s.snapshot().prometheus_text("join1");
        assert!(text.contains("# TYPE bistream_tuples_ingested_total counter"));
        assert!(text.contains("bistream_tuples_ingested_total{engine=\"join1\"} 3"));
        assert!(text.contains("bistream_join_results_total{engine=\"join1\"} 2"));
        // Every metric line follows a HELP and TYPE line.
        let metric_lines = text.lines().filter(|l| !l.starts_with('#')).count();
        let help_lines = text.lines().filter(|l| l.starts_with("# HELP")).count();
        assert_eq!(metric_lines, help_lines);
        // No label block when the label is empty.
        let unlabelled = s.snapshot().prometheus_text("");
        assert!(unlabelled.contains("bistream_tuples_ingested_total 3"));
    }
}
