//! The assembled biclique: routers + joiners + simulated delivery, with
//! elastic scaling.
//!
//! `BicliqueEngine` is the deterministic in-process form of the system —
//! the same router/joiner cores the threaded runtime uses, wired through
//! [`crate::delivery::ChannelNet`] instead of broker queues. Experiments
//! that need long virtual horizons (autoscaling), adversarial message
//! schedules (ordering correctness) or exact result capture run against
//! this engine; wall-clock throughput numbers come from [`crate::exec`].
//!
//! ## Scaling without migration
//!
//! [`BicliqueEngine::scale_to`] changes a side's unit count by editing the
//! layout only — stored tuples never move. Correctness is preserved by two
//! mechanisms:
//!
//! - **Draining** (scale-in): a retired unit stops receiving store copies
//!   immediately but keeps receiving join copies and punctuations until
//!   its window state has fully expired, then disappears.
//! - **Historical layouts** (content-sensitive routing): for one window
//!   after a scaling event, join copies are additionally routed according
//!   to every layout that was live within the window, so tuples stored
//!   under the old key→unit mapping keep being probed. Random routing is
//!   unaffected (its join stream already broadcasts), which mirrors the
//!   paper's observation that random/ContRand routing makes scaling
//!   cheap.

use crate::adaptive::AdaptiveShared;
use crate::chaos::ChaosNet;
use crate::config::{EngineConfig, RoutingStrategy};
use crate::delivery::{ChannelNet, DataPlane, DeliveryMode};
use crate::joiner::{JoinerCore, JoinerStats};
use crate::layout::{JoinerId, Layout};
use crate::router::{join_dests, BackoffPolicy, RetryQueue, RoutedBatch, RouterCore};
use crate::stats::{EngineSnapshot, EngineStats};
use bistream_cluster::{CostModel, ResourceMeter};
use bistream_types::audit::Auditor;
use bistream_types::batch::BatchMessage;
use bistream_types::error::{Error, Result};
use bistream_types::fault::FaultPlan;
use bistream_types::hash::{FxHashMap, FxHashSet};
use bistream_types::journal::EventKind;
use bistream_types::punct::{Punctuation, RouterId, SeqNo};
use bistream_types::registry::Observability;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::trace::HopKind;
use bistream_types::tuple::{JoinResult, Tuple};
use std::sync::Arc;

/// The in-process biclique engine.
///
/// ```
/// use bistream_core::config::EngineConfig;
/// use bistream_core::engine::BicliqueEngine;
/// use bistream_types::{rel::Rel, tuple::Tuple, value::Value};
///
/// let mut engine = BicliqueEngine::new(EngineConfig::default_equi())?;
/// engine.capture_results();
/// engine.ingest(&Tuple::new(Rel::R, 10, vec![Value::Int(42)]), 10)?;
/// engine.ingest(&Tuple::new(Rel::S, 20, vec![Value::Int(42)]), 20)?;
/// engine.punctuate(40)?; // ordering protocol releases on punctuations
/// assert_eq!(engine.take_captured().len(), 1);
/// # Ok::<(), bistream_types::error::Error>(())
/// ```
pub struct BicliqueEngine {
    config: EngineConfig,
    cost: CostModel,
    layout: Layout,
    routers: Vec<RouterCore>,
    rr_next: usize,
    joiners: FxHashMap<JoinerId, JoinerCore>,
    /// Retired units still draining their window state, with retire time.
    draining: Vec<(Rel, JoinerId, Ts)>,
    /// Superseded layouts and when they stop mattering.
    historical: Vec<(Layout, Ts)>,
    net: ChannelNet<BatchMessage>,
    /// Armed fault injection; when present, delivery runs on the chaos
    /// net and [`net`](Self::net) is bypassed.
    chaos: Option<ChaosState>,
    stats: Arc<EngineStats>,
    obs: Observability,
    /// Shared adaptive-routing state when running
    /// [`RoutingStrategy::Adaptive`]; `None` under the static strategies.
    adaptive: Option<Arc<AdaptiveShared>>,
    auditor: Option<Auditor>,
    capture: Option<Vec<JoinResult>>,
    auto_pump: bool,
    now: Ts,
    scratch: Vec<RoutedBatch>,
}

/// Everything the engine needs to execute a [`FaultPlan`]: the
/// plan-driven network, the router retry queue for partitioned sends,
/// the retransmission log and checkpoints behind the crash/recover
/// drill, and the result-identity set that deduplicates replayed probes.
struct ChaosState {
    net: ChaosNet<BatchMessage>,
    retries: RetryQueue,
    /// Per-unit log of every data frame sent to it, for retransmission
    /// after a crash. Trimmed at each checkpoint to the frames the
    /// checkpoint does not cover.
    sent_log: FxHashMap<JoinerId, Vec<(RouterId, BatchMessage)>>,
    /// Last checkpoint per unit: `(window-state snapshot, reorder
    /// watermark at snapshot time)`.
    checkpoints: FxHashMap<JoinerId, (bytes::Bytes, SeqNo)>,
    /// Identities of every emitted result; replayed probes after a crash
    /// re-derive results already emitted, which must not surface twice.
    emitted: FxHashSet<String>,
    /// Seeded bug for the chaos explorer's self-test: restart units
    /// *without* re-hydrating their snapshot.
    skip_rehydrate: bool,
    crashes_fired: u32,
}

impl ChaosState {
    fn new(plan: FaultPlan) -> ChaosState {
        ChaosState {
            net: ChaosNet::new(plan),
            retries: RetryQueue::new(BackoffPolicy::default()),
            sent_log: FxHashMap::default(),
            checkpoints: FxHashMap::default(),
            emitted: FxHashSet::default(),
            skip_rehydrate: false,
            crashes_fired: 0,
        }
    }

    /// Send a frame, logging data frames for crash retransmission.
    fn send(&mut self, router: RouterId, dest: JoinerId, msg: BatchMessage) {
        if matches!(msg, BatchMessage::Batch(_)) {
            self.sent_log.entry(dest).or_default().push((router, msg.clone()));
        }
        self.offer(router, dest, msg);
    }

    /// Send a frame without logging (the recovery replay path — those
    /// frames are already in the log). Frames refused by a partition, or
    /// queued behind earlier refused frames of the same channel (FIFO),
    /// park in the retry queue.
    fn offer(&mut self, router: RouterId, dest: JoinerId, msg: BatchMessage) {
        let step = self.net.step();
        if self.retries.has_pending(router, dest) || !self.net.channel_open(router, dest.0) {
            self.retries.push(router, dest, msg, step);
        } else {
            let accepted = self.net.send(router, dest, msg);
            debug_assert!(accepted, "open channel refused a frame");
        }
    }

    /// Re-attempt parked frames whose backoff has expired.
    fn drain_retries(&mut self) -> usize {
        let step = self.net.step();
        let net = &mut self.net;
        self.retries.drain_due(step, |router, dest, msg| {
            if net.channel_open(router, dest.0) {
                let accepted = net.send(router, dest, msg.clone());
                debug_assert!(accepted, "open channel refused a retry");
                true
            } else {
                false
            }
        })
    }

    fn forget_unit(&mut self, unit: JoinerId) {
        self.net.forget_unit(unit);
        self.retries.forget_unit(unit);
        self.sent_log.remove(&unit);
        self.checkpoints.remove(&unit);
    }
}

impl BicliqueEngine {
    /// Build an engine with one router and in-order delivery.
    pub fn new(config: EngineConfig) -> Result<BicliqueEngine> {
        Self::builder(config).build()
    }

    /// Start a builder for non-default topologies.
    pub fn builder(config: EngineConfig) -> EngineBuilder {
        EngineBuilder {
            config,
            routers: 1,
            delivery: DeliveryMode::InOrder,
            cost: CostModel::default(),
            auto_pump: true,
            obs: None,
            auditor: None,
            chaos: None,
            engine_label: "engine".to_string(),
        }
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current (active) layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Engine-wide counters.
    pub fn stats(&self) -> EngineSnapshot {
        self.stats.snapshot()
    }

    /// The engine's observability bundle: the labeled metrics registry
    /// every unit registers into and the shared event journal. Scrape
    /// with `observability().registry.scrape(now)` /
    /// `.prometheus_text(now)`; drain events with
    /// `observability().journal.drain()`.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Units currently draining (retired but not yet empty).
    pub fn draining_units(&self) -> usize {
        self.draining.len()
    }

    /// The protocol-invariant auditor observing this engine, if one is
    /// attached (always in debug builds, never in release unless set via
    /// [`EngineBuilder::auditor`]). Tests use it to arm the output oracle
    /// before ingesting and to [`Auditor::finish`] /
    /// [`Auditor::assert_clean`] after flushing.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.auditor.as_ref()
    }

    /// The shared adaptive-routing state when running
    /// [`RoutingStrategy::Adaptive`] (`None` under the static
    /// strategies). Tests read the committed epoch and switch counter
    /// here and arm debug modes such as
    /// [`AdaptiveShared::force_flip_every_tick`].
    pub fn adaptive_state(&self) -> Option<&Arc<AdaptiveShared>> {
        self.adaptive.as_ref()
    }

    /// Seeded bug for the auditor self-test: make every adaptive router
    /// adopt pending plans *without* waiting for its punctuation fence,
    /// dropping superseded probe coverage immediately. Missed results
    /// surface as output-oracle violations. No-op under static routing.
    pub fn debug_skip_fence(&mut self, on: bool) {
        for r in &mut self.routers {
            r.debug_skip_fence(on);
        }
    }

    /// Begin capturing emitted join results (for correctness tests).
    pub fn capture_results(&mut self) {
        self.capture = Some(Vec::new());
    }

    /// Take everything captured since [`capture_results`].
    ///
    /// [`capture_results`]: BicliqueEngine::capture_results
    pub fn take_captured(&mut self) -> Vec<JoinResult> {
        self.capture.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Disable automatic pumping: messages accumulate in the network until
    /// [`pump`] is called, letting tests interleave delivery adversarially.
    ///
    /// [`pump`]: BicliqueEngine::pump
    pub fn set_auto_pump(&mut self, on: bool) {
        self.auto_pump = on;
    }

    /// Ingest one tuple at virtual time `now`.
    ///
    /// The tuple's copies enter the router's per-destination batches;
    /// whatever those batches flush (immediately with `batch_size = 1`,
    /// on a size or punctuation boundary otherwise) is sent as
    /// [`BatchMessage`] frames.
    pub fn ingest(&mut self, tuple: &Tuple, now: Ts) -> Result<()> {
        self.now = self.now.max(now);
        self.purge_historical();
        self.stats.ingested.inc();
        if let Some(a) = &self.auditor {
            a.set_now(self.now);
            if a.oracle_enabled() {
                self.observe_oracle_input(tuple);
            }
        }

        let r_idx = self.rr_next % self.routers.len();
        self.rr_next = self.rr_next.wrapping_add(1);

        // Augment the join stream for scaling transitions: historical
        // layouts and draining units of the opposite side, deduplicated
        // against the current layout's join destinations (under adaptive
        // routing those come from the chosen router's live probe union).
        // The extra copies ride in the same batches under the same
        // sequence stamp.
        let current = self.routers[r_idx].planned_join_dests(tuple, &self.layout)?;
        let mut extras: Vec<JoinerId> = Vec::new();
        for (old, _) in &self.historical {
            for dest in join_dests(self.config.routing, &self.config.predicate, tuple, old)? {
                if self.joiners.contains_key(&dest)
                    && !current.contains(&dest)
                    && !extras.contains(&dest)
                {
                    extras.push(dest);
                }
            }
        }
        let opp = tuple.rel().opposite();
        for &(side, id, _) in &self.draining {
            if side == opp && !current.contains(&id) && !extras.contains(&id) {
                extras.push(id);
            }
        }

        let router_id = self.routers[r_idx].id();
        let mut frames = std::mem::take(&mut self.scratch);
        frames.clear();
        self.routers[r_idx].route_batched(tuple, &self.layout, &extras, &mut frames)?;
        self.stats.copies.add(1 + current.len() as u64 + extras.len() as u64);
        self.send_frames(router_id, &mut frames);
        self.scratch = frames;
        if self.auto_pump {
            self.pump()?;
        }
        Ok(())
    }

    /// Report an ingested tuple to the auditor's nested-loop oracle. Only
    /// equi joins are reported with a real key; other predicates cannot be
    /// replayed by the oracle's key-equality model, so they are skipped
    /// (the oracle then sees no inputs and stays trivially satisfied).
    fn observe_oracle_input(&self, tuple: &Tuple) {
        let Some(a) = &self.auditor else { return };
        if let bistream_types::predicate::JoinPredicate::Equi { r_attr, s_attr } =
            &self.config.predicate
        {
            let is_r = tuple.rel() == Rel::R;
            let attr = if is_r { *r_attr } else { *s_attr };
            if let Some(key) = tuple.get(attr) {
                a.observe_input(is_r, tuple.ts(), key.to_string(), tuple.to_string());
            }
        }
    }

    /// Send flushed frames into the network, recording an enqueue span for
    /// every sampled tuple a data frame carries.
    fn send_frames(&mut self, router_id: RouterId, frames: &mut Vec<RoutedBatch>) {
        let tracer = self.obs.tracer.clone();
        for f in frames.drain(..) {
            if let BatchMessage::Batch(b) = &f.msg {
                for e in b.entries() {
                    if tracer.sampled(e.seq) {
                        tracer.span(
                            e.seq,
                            HopKind::Enqueue,
                            &f.dest.to_string(),
                            self.now,
                            self.now,
                        );
                    }
                }
            }
            self.net_send(router_id, f.dest, f.msg);
        }
    }

    /// The live delivery fabric as the unified [`DataPlane`] seam: the
    /// chaos net when fault injection is armed, the plain channel net
    /// otherwise. Delivery and drain always go through this; sends go
    /// through [`net_send`](Self::net_send), whose chaos arm wraps the
    /// plane with retransmission logging and partition retries.
    fn plane(&mut self) -> &mut dyn DataPlane<BatchMessage> {
        match &mut self.chaos {
            Some(c) => &mut c.net,
            None => &mut self.net,
        }
    }

    /// Route one frame into the live data plane. With chaos armed the
    /// frame goes via [`ChaosState::send`] (retransmission log + retry
    /// queue around the plane's refusable send); otherwise straight into
    /// the channel net, which never refuses.
    fn net_send(&mut self, router: RouterId, dest: JoinerId, msg: BatchMessage) {
        match &mut self.chaos {
            Some(c) => c.send(router, dest, msg),
            None => {
                let accepted = DataPlane::send(&mut self.net, router, dest, msg);
                debug_assert!(accepted, "ChannelNet never refuses a frame");
            }
        }
    }

    /// Emit punctuations from every router to every unit (active and
    /// draining) at virtual time `now`. Call this on the configured
    /// punctuation interval; without it the ordering protocol never
    /// releases buffered tuples.
    pub fn punctuate(&mut self, now: Ts) -> Result<()> {
        self.now = self.now.max(now);
        let mut frames = std::mem::take(&mut self.scratch);
        for i in 0..self.routers.len() {
            frames.clear();
            // Flushes the router's pending batches first: per-channel FIFO
            // then guarantees the punctuation arrives behind every copy it
            // covers.
            self.routers[i].punctuate_batched(&self.layout, &mut frames);
            let p = Punctuation { router: self.routers[i].id(), seq: self.routers[i].last_seq() };
            let puncts = frames.iter().filter(|f| matches!(f.msg, BatchMessage::Punct(_))).count();
            self.stats.punctuations.add(puncts as u64);
            self.send_frames(p.router, &mut frames);
            let drain_ids: Vec<JoinerId> = self.draining.iter().map(|d| d.1).collect();
            for id in drain_ids {
                self.net_send(p.router, id, BatchMessage::Punct(p));
                self.stats.punctuations.inc();
            }
        }
        self.scratch = frames;
        if self.auto_pump {
            self.pump()?;
        }
        Ok(())
    }

    /// Deliver every in-flight frame to its joiner, collecting results.
    ///
    /// With fault injection armed this is also where the plan executes:
    /// due crash events run the crash/recover drill, parked retries whose
    /// backoff expired are re-attempted, and when nothing is deliverable
    /// but retries remain, the schedule fast-forwards to their due step.
    pub fn pump(&mut self) -> Result<()> {
        let stats = Arc::clone(&self.stats);
        let auditor = self.auditor.clone();
        let now = self.now;
        loop {
            if self.chaos.is_some() {
                let due = match self.chaos.as_mut() {
                    Some(c) => c.net.take_due_crashes(),
                    None => Vec::new(),
                };
                for unit in due {
                    self.crash_unit(JoinerId(unit))?;
                }
                if let Some(c) = self.chaos.as_mut() {
                    c.drain_retries();
                }
            }
            let flight = self.plane().deliver_next();
            let Some(flight) = flight else {
                // Nothing deliverable. Refused frames may be parked on
                // backoff: fast-forward the chaos schedule to their due
                // step and try again. (Crash events get no such jump —
                // they fire only when deliveries naturally reach their
                // step, else every crash would fire on the first pump.)
                match self.chaos.as_mut().and_then(|c| c.retries.earliest_due()) {
                    Some(step) => {
                        if let Some(c) = self.chaos.as_mut() {
                            c.net.advance_to(step);
                        }
                        continue;
                    }
                    None => break,
                }
            };
            let Some(joiner) = self.joiners.get_mut(&flight.dest) else {
                // Unit retired between send and delivery; the frame is
                // moot (its state is gone because it fully expired). Close
                // every carried tuple's trace branch so traces complete.
                if let BatchMessage::Batch(b) = &flight.msg {
                    for e in b.entries() {
                        if self.obs.tracer.sampled(e.seq) {
                            self.obs.tracer.end_branch(e.seq);
                        }
                    }
                }
                continue;
            };
            joiner.set_now(now);
            if let BatchMessage::Batch(b) = &flight.msg {
                for e in b.entries() {
                    if self.obs.tracer.sampled(e.seq) {
                        self.obs.tracer.span(
                            e.seq,
                            HopKind::Dequeue,
                            &flight.dest.to_string(),
                            now,
                            now,
                        );
                    }
                }
            }
            let capture = &mut self.capture;
            let per_joiner_latency = joiner.latency_histogram();
            let mut emitted = self.chaos.as_mut().map(|c| &mut c.emitted);
            joiner.handle_batch(flight.msg, &mut |result: JoinResult| {
                // Replayed probes after a crash re-derive results that
                // already surfaced; the identity set drops the echoes.
                if let Some(seen) = emitted.as_deref_mut() {
                    if !seen.insert(format!("{:?}", result.identity())) {
                        return;
                    }
                }
                stats.results.inc();
                let latency = now.saturating_sub(result.ts);
                stats.latency_ms.record(latency);
                if let Some(h) = &per_joiner_latency {
                    h.record(latency);
                }
                if let Some(a) = auditor.as_ref().filter(|a| a.oracle_enabled()) {
                    a.observe_output(&result.r.to_string(), &result.s.to_string());
                }
                if let Some(buf) = capture {
                    buf.push(result);
                }
            })?;
        }
        self.retire_drained();
        Ok(())
    }

    /// Terminal flush: deliver everything in flight, then drain every
    /// reorder buffer in global order. Call once at the end of a run so
    /// the final punctuation gap does not strand buffered tuples.
    pub fn flush(&mut self) -> Result<()> {
        // Push out any copies still sitting in router batches, then drain
        // the network before flushing the reorder buffers.
        let mut frames = std::mem::take(&mut self.scratch);
        for i in 0..self.routers.len() {
            frames.clear();
            let id = self.routers[i].id();
            self.routers[i].flush_batches(&mut frames);
            self.send_frames(id, &mut frames);
        }
        self.scratch = frames;
        self.pump()?;
        let stats = Arc::clone(&self.stats);
        let auditor = self.auditor.clone();
        let now = self.now;
        for joiner in self.joiners.values_mut() {
            joiner.set_now(now);
            let capture = &mut self.capture;
            let per_joiner_latency = joiner.latency_histogram();
            let mut emitted = self.chaos.as_mut().map(|c| &mut c.emitted);
            joiner.flush(&mut |result: JoinResult| {
                if let Some(seen) = emitted.as_deref_mut() {
                    if !seen.insert(format!("{:?}", result.identity())) {
                        return;
                    }
                }
                stats.results.inc();
                let latency = now.saturating_sub(result.ts);
                stats.latency_ms.record(latency);
                if let Some(h) = &per_joiner_latency {
                    h.record(latency);
                }
                if let Some(a) = auditor.as_ref().filter(|a| a.oracle_enabled()) {
                    a.observe_output(&result.r.to_string(), &result.s.to_string());
                }
                if let Some(buf) = capture {
                    buf.push(result);
                }
            })?;
        }
        Ok(())
    }

    /// Resize `side` to `n` active joiners at virtual time `now`. Returns
    /// the ids added and retired. No stored tuple is moved.
    pub fn scale_to(
        &mut self,
        side: Rel,
        n: usize,
        now: Ts,
    ) -> Result<(Vec<JoinerId>, Vec<JoinerId>)> {
        self.now = self.now.max(now);
        let from = self.layout.units(side).len();
        if n == from {
            return Ok((Vec::new(), Vec::new()));
        }
        self.obs
            .journal
            .record(self.now, EventKind::ScaleDecision { side, from: from as u32, to: n as u32 });
        // Content-sensitive routing needs the old mapping kept alive for
        // one window; random routing covers old units via the draining
        // list alone.
        if !matches!(self.config.routing, RoutingStrategy::Random) {
            let expires = match self.config.window.size() {
                Some(w) => self.now.saturating_add(w),
                None => Ts::MAX,
            };
            self.historical.push((self.layout.clone(), expires));
        }
        let (added, removed) = self.layout.resize(side, n)?;
        let frontiers: Vec<(RouterId, SeqNo)> =
            self.routers.iter().map(|r| (r.id(), r.last_seq())).collect();
        for &id in &added {
            self.joiners.insert(id, self.make_joiner(id, side, &frontiers));
        }
        for &id in &removed {
            let expires = match self.config.window.size() {
                Some(w) => self.now.saturating_add(w),
                None => Ts::MAX,
            };
            self.draining.push((side, id, expires));
        }
        self.purge_historical();
        Ok((added, removed))
    }

    /// Adapt the ContRand subgroup count to `d` at virtual time `now` —
    /// the paper's subgroup adjustment. Like unit scaling, this is a pure
    /// layout change: the previous subgroup mapping is kept alive as a
    /// historical layout for one window so tuples stored under it keep
    /// receiving probes.
    pub fn set_subgroups(&mut self, d: usize, now: Ts) -> Result<()> {
        self.now = self.now.max(now);
        if !matches!(self.config.routing, RoutingStrategy::ContRand { .. }) {
            return Err(Error::Config(
                "subgroup adjustment only applies to ContRand routing".into(),
            ));
        }
        let expires = match self.config.window.size() {
            Some(w) => self.now.saturating_add(w),
            None => Ts::MAX,
        };
        self.historical.push((self.layout.clone(), expires));
        self.layout.set_subgroups(d)?;
        self.config.routing = RoutingStrategy::ContRand { subgroups: d };
        for r in &mut self.routers {
            r.set_strategy(self.config.routing);
        }
        self.purge_historical();
        Ok(())
    }

    /// Add a router instance (router-tier scale-out); returns its id.
    ///
    /// The new router shares the engine's global sequence counter, so its
    /// punctuations immediately report the true clock; every joiner
    /// (active and draining) registers it at the current counter.
    ///
    /// Under [`RoutingStrategy::Adaptive`] the switch protocol's ack set
    /// is fixed at build time, so only a router id that was declared then
    /// (i.e. re-adding after [`remove_router`](Self::remove_router)) gets
    /// an adaptive handle; a genuinely new id would route with a clear
    /// configuration error instead of silently weakening the fence.
    pub fn add_router(&mut self) -> RouterId {
        let id = self.routers.len() as RouterId;
        let mut router = RouterCore::new(
            id,
            self.config.routing,
            self.config.predicate.clone(),
            self.config.seed,
            self.seq_counter(),
        );
        router.set_batch_size(self.config.batch_size);
        router.attach_registry(&self.obs.registry);
        router.attach_tracer(self.obs.tracer.clone());
        if let Some(a) = &self.auditor {
            router.set_auditor(a.clone());
        }
        if let Some(sh) = &self.adaptive {
            if (id as usize) < sh.router_count() {
                router.attach_adaptive(sh.handle(id));
            }
        }
        let frontier = router.last_seq();
        for joiner in self.joiners.values_mut() {
            joiner.register_router(id, frontier);
        }
        self.routers.push(router);
        id
    }

    /// Retire the most recently added router (router-tier scale-in).
    ///
    /// The router emits a final punctuation (delivered before
    /// deregistration so everything it ever sent is releasable), then all
    /// joiners drop its frontier.
    ///
    /// # Errors
    /// [`Error::Scaling`] when only one router remains.
    pub fn remove_router(&mut self) -> Result<()> {
        let Some(mut router) = (self.routers.len() > 1).then(|| self.routers.pop()).flatten()
        else {
            return Err(Error::Scaling("engine needs at least one router".into()));
        };
        let id = router.id();
        // The retiring router may hold unflushed batches; they must go
        // out ahead of its final punctuation.
        let mut frames = Vec::new();
        router.flush_batches(&mut frames);
        self.send_frames(id, &mut frames);
        let p = Punctuation { router: id, seq: router.last_seq() };
        let dests: Vec<JoinerId> = self
            .layout
            .all_units()
            .map(|(_, dest)| dest)
            .chain(self.draining.iter().map(|d| d.1))
            .collect();
        for dest in dests {
            self.net_send(id, dest, BatchMessage::Punct(p));
            self.stats.punctuations.inc();
        }
        self.pump()?;
        let stats = Arc::clone(&self.stats);
        let auditor = self.auditor.clone();
        let now = self.now;
        for joiner in self.joiners.values_mut() {
            joiner.set_now(now);
            let capture = &mut self.capture;
            let per_joiner_latency = joiner.latency_histogram();
            joiner.deregister_router(id, &mut |result: JoinResult| {
                stats.results.inc();
                let latency = now.saturating_sub(result.ts);
                stats.latency_ms.record(latency);
                if let Some(h) = &per_joiner_latency {
                    h.record(latency);
                }
                if let Some(a) = auditor.as_ref().filter(|a| a.oracle_enabled()) {
                    a.observe_output(&result.r.to_string(), &result.s.to_string());
                }
                if let Some(buf) = capture {
                    buf.push(result);
                }
            })?;
        }
        // The retired router's series would otherwise read as a frozen
        // counter forever; drop them from the scrape.
        self.obs.registry.unregister_labeled("router", &format!("r{id}"));
        // Round-robin cursor may now point past the end; realign.
        self.rr_next %= self.routers.len();
        Ok(())
    }

    /// Number of router instances.
    pub fn routers(&self) -> usize {
        self.routers.len()
    }

    fn seq_counter(&self) -> Arc<std::sync::atomic::AtomicU64> {
        self.routers[0].seq_counter()
    }

    /// Per-joiner stored-tuple counts for `side` (load-balance metrics).
    pub fn stored_per_joiner(&self, side: Rel) -> Vec<u64> {
        self.layout.units(side).iter().map(|id| self.joiners[id].stats().stored).collect()
    }

    /// Total live bytes of window state on `side`'s active units.
    pub fn memory_bytes(&self, side: Rel) -> u64 {
        self.layout.units(side).iter().map(|id| self.joiners[id].index_stats().bytes as u64).sum()
    }

    /// Snapshot one unit's stored window state for recovery (quiesce
    /// first: punctuate + pump so its reorder buffer is empty).
    pub fn snapshot_unit(&self, id: JoinerId) -> Result<bytes::Bytes> {
        self.joiners
            .get(&id)
            .map(|j| j.snapshot_state())
            .ok_or_else(|| Error::Scaling(format!("no such unit {id}")))
    }

    /// Replace a unit's in-memory state from a snapshot — the recovery
    /// path after a unit restart. The unit keeps its identity, queue and
    /// router registrations; only its window state is rebuilt.
    pub fn restore_unit(&mut self, id: JoinerId, blob: impl bytes::Buf) -> Result<usize> {
        // Rebuild the unit from scratch (the "restarted pod"), register
        // the live routers at their current frontiers, then load state.
        let Some(side) = self.layout.all_units().find(|&(_, u)| u == id).map(|(side, _)| side)
        else {
            return Err(Error::Scaling(format!("no such active unit {id}")));
        };
        let frontiers: Vec<(RouterId, SeqNo)> =
            self.routers.iter().map(|r| (r.id(), r.last_seq())).collect();
        let mut fresh = self.make_joiner(id, side, &frontiers);
        let n = fresh.restore_state(blob)?;
        self.joiners.insert(id, fresh);
        Ok(n)
    }

    /// Checkpoint one unit for the chaos crash/recover drill: snapshot
    /// its stored window state together with its reorder watermark `W`,
    /// and trim its retransmission log to the frames the checkpoint does
    /// not cover.
    ///
    /// `W` is the recovery frontier — everything the unit *released* has
    /// `seq ≤ W` and lives in the snapshot (stores) or was already
    /// emitted (probes); everything buffered has `seq > W` and stays in
    /// the log for replay. Crucially the restored unit registers *every*
    /// router at `W` (not per-router frontiers): replayed frames with
    /// `seq ≤ W` are then duplicate-dropped, frames above it re-buffer,
    /// and no frame is lost to an overstated frontier.
    ///
    /// # Errors
    /// [`Error::Fault`] without an armed chaos layer or for an unknown
    /// unit.
    pub fn checkpoint_unit(&mut self, id: JoinerId) -> Result<()> {
        if self.chaos.is_none() {
            return Err(Error::Fault("checkpoints need a chaos-armed engine".into()));
        }
        let Some(joiner) = self.joiners.get(&id) else {
            return Err(Error::Fault(format!("no such unit {id}")));
        };
        let watermark = joiner.reorder_watermark().unwrap_or(0);
        let blob = joiner.snapshot_state();
        if let Some(c) = self.chaos.as_mut() {
            c.checkpoints.insert(id, (blob, watermark));
            if let Some(log) = c.sent_log.get_mut(&id) {
                log.retain(|(_, msg)| match msg {
                    BatchMessage::Batch(b) => b.last_seq().is_some_and(|s| s > watermark),
                    BatchMessage::Punct(_) => false,
                });
            }
        }
        Ok(())
    }

    /// [`checkpoint_unit`](Self::checkpoint_unit) for every active unit.
    pub fn checkpoint_all(&mut self) -> Result<()> {
        let ids: Vec<JoinerId> = self.layout.all_units().map(|(_, id)| id).collect();
        for id in ids {
            self.checkpoint_unit(id)?;
        }
        Ok(())
    }

    /// The crash/recover drill: kill a unit (its in-memory sub-indexes
    /// and all in-flight traffic to it are lost) and bring up a fresh
    /// incarnation. Returns the number of tuples re-hydrated from the
    /// last checkpoint.
    ///
    /// Recovery runs in an order the ordering protocol can digest:
    ///
    /// 1. the unit's channels, parked retries and auditor incarnation
    ///    state are dropped;
    /// 2. a fresh joiner registers every router at the checkpoint
    ///    watermark `W` and re-hydrates the snapshot (unless the seeded
    ///    `skip_rehydrate` bug is armed — the chaos explorer's target);
    /// 3. the retransmission log replays, in original per-channel order
    ///    (frames `≤ W` are duplicate-dropped; replayed probes re-derive
    ///    results the emitted-identity set suppresses);
    /// 4. every router flushes its pending batches — *before* any new
    ///    punctuation, since those batches hold sequence numbers the
    ///    punctuation would otherwise claim to cover;
    /// 5. each router sends the restored unit a fresh punctuation at its
    ///    current sequence, re-arming the watermark.
    ///
    /// # Errors
    /// [`Error::Fault`] without an armed chaos layer or for an unknown
    /// unit; snapshot decode errors propagate as [`Error::Codec`].
    pub fn crash_unit(&mut self, id: JoinerId) -> Result<usize> {
        if self.chaos.is_none() {
            return Err(Error::Fault(
                "crash drills need a chaos-armed engine (EngineBuilder::chaos)".into(),
            ));
        }
        let Some(side) = self.layout.all_units().find(|&(_, u)| u == id).map(|(side, _)| side)
        else {
            return Err(Error::Fault(format!("no such active unit {id}")));
        };
        if let Some(c) = self.chaos.as_mut() {
            c.net.forget_unit(id);
            c.retries.forget_unit(id);
            c.crashes_fired += 1;
        }
        if let Some(a) = &self.auditor {
            a.unit_restarted(&format!("{side}{}", id.0));
        }
        let (snapshot, watermark) = self
            .chaos
            .as_ref()
            .and_then(|c| c.checkpoints.get(&id))
            .map(|(blob, w)| (Some(blob.clone()), *w))
            .unwrap_or((None, 0));
        let frontiers: Vec<(RouterId, SeqNo)> =
            self.routers.iter().map(|r| (r.id(), watermark)).collect();
        let mut fresh = self.make_joiner(id, side, &frontiers);
        let mut restored = 0;
        let skip = self.chaos.as_ref().map(|c| c.skip_rehydrate).unwrap_or(false);
        if let Some(blob) = snapshot {
            if !skip {
                restored = fresh.restore_state(blob)?;
            }
        }
        self.joiners.insert(id, fresh);
        if let Some(c) = self.chaos.as_mut() {
            let log = c.sent_log.get(&id).cloned().unwrap_or_default();
            for (router, msg) in log {
                c.offer(router, id, msg);
            }
        }
        let mut frames = std::mem::take(&mut self.scratch);
        for i in 0..self.routers.len() {
            frames.clear();
            let rid = self.routers[i].id();
            self.routers[i].flush_batches(&mut frames);
            self.send_frames(rid, &mut frames);
        }
        self.scratch = frames;
        for i in 0..self.routers.len() {
            let p = Punctuation { router: self.routers[i].id(), seq: self.routers[i].last_seq() };
            self.net_send(p.router, id, BatchMessage::Punct(p));
            self.stats.punctuations.inc();
        }
        Ok(restored)
    }

    /// Crash drills fired so far (0 without an armed chaos layer).
    pub fn crashes_fired(&self) -> u32 {
        self.chaos.as_ref().map(|c| c.crashes_fired).unwrap_or(0)
    }

    /// The chaos schedule's current step, if fault injection is armed.
    pub fn chaos_step(&self) -> Option<u64> {
        self.chaos.as_ref().map(|c| c.net.step())
    }

    /// Test-only seeded bug: restart crashed units *without* re-hydrating
    /// their checkpoint snapshot. Stored tuples below the checkpoint
    /// watermark silently vanish — exactly the class of recovery bug the
    /// chaos explorer exists to catch via the output oracle.
    #[doc(hidden)]
    pub fn debug_skip_rehydrate(&mut self, on: bool) {
        if let Some(c) = self.chaos.as_mut() {
            c.skip_rehydrate = on;
        }
    }

    /// Highest reorder-buffer depth ever observed on any active joiner —
    /// the buffering cost of the ordering protocol (grows with the
    /// punctuation interval and with router imbalance).
    pub fn max_reorder_depth(&self) -> usize {
        self.layout
            .all_units()
            .filter_map(|(_, id)| self.joiners[&id].reorder_stats())
            .map(|s| s.max_depth)
            .max()
            .unwrap_or(0)
    }

    /// Aggregated joiner counters over both sides (active units).
    pub fn joiner_totals(&self) -> JoinerStats {
        let mut total = JoinerStats::default();
        for (_, id) in self.layout.all_units() {
            let s = self.joiners[&id].stats();
            total.stored += s.stored;
            total.probes += s.probes;
            total.candidates += s.candidates;
            total.results += s.results;
            total.expired += s.expired;
        }
        total
    }

    /// Resource meters of `side`'s active units, keyed by stable unit id —
    /// the [`bistream_cluster::ScaleTarget`] contract.
    pub fn pod_meters(&self, side: Rel) -> Vec<(usize, Arc<ResourceMeter>)> {
        self.layout.units(side).iter().map(|id| (id.0 as usize, self.joiners[id].meter())).collect()
    }

    /// Number of active joiners on `side`.
    pub fn replicas(&self, side: Rel) -> usize {
        self.layout.units(side).len()
    }

    fn make_joiner(&self, id: JoinerId, side: Rel, frontiers: &[(RouterId, SeqNo)]) -> JoinerCore {
        let mut joiner = JoinerCore::new(
            id,
            side,
            self.config.predicate.clone(),
            self.config.window,
            self.config.archive_period_ms,
            self.config.ordering,
            frontiers,
            self.cost,
        );
        joiner.set_batch_size(self.config.batch_size);
        joiner.attach_obs(&self.obs);
        if let Some(a) = &self.auditor {
            joiner.set_auditor(a.clone());
        }
        joiner
    }

    /// Test-only fault injection: force-raise `router`'s frontier to `seq`
    /// in every active joiner's reorder buffer, bypassing the monotonic
    /// punctuation path — simulating a broken watermark computation. With
    /// an auditor attached, any release this provokes ahead of the real
    /// channel punctuation is reported as a Definition 7 violation.
    #[doc(hidden)]
    pub fn debug_corrupt_frontier(&mut self, router: RouterId, seq: SeqNo) -> Result<()> {
        let stats = Arc::clone(&self.stats);
        let now = self.now;
        for joiner in self.joiners.values_mut() {
            joiner.set_now(now);
            let capture = &mut self.capture;
            joiner.debug_corrupt_frontier(router, seq, &mut |result: JoinResult| {
                stats.results.inc();
                if let Some(buf) = capture {
                    buf.push(result);
                }
            })?;
        }
        Ok(())
    }

    /// Test-only fault injection: freeze every active joiner's reorder
    /// frontier (see [`JoinerCore::debug_freeze_frontier`]). While frozen,
    /// punctuations no longer advance watermarks, so buffered tuples pile
    /// up behind a flatlined frontier — the seeded stall the progress
    /// watchdog must detect within its tick bound.
    #[doc(hidden)]
    pub fn debug_freeze_frontier(&mut self, on: bool) {
        for joiner in self.joiners.values_mut() {
            joiner.debug_freeze_frontier(on);
        }
    }

    fn purge_historical(&mut self) {
        let now = self.now;
        self.historical.retain(|(_, expires)| *expires > now);
    }

    fn retire_drained(&mut self) {
        let now = self.now;
        let joiners = &mut self.joiners;
        let net = &mut self.net;
        let chaos = &mut self.chaos;
        let registry = &self.obs.registry;
        self.draining.retain(|&(side, id, expires)| {
            let empty = joiners.get(&id).map(|j| j.index_stats().tuples == 0).unwrap_or(true);
            // A draining unit retires once its stored state is gone, or
            // unconditionally once a full window has passed (its residual
            // state can no longer match anything).
            if empty || now >= expires {
                joiners.remove(&id);
                net.forget_unit(id);
                if let Some(c) = chaos.as_mut() {
                    c.forget_unit(id);
                }
                // Drop the unit's series so the scrape reflects the live
                // topology (counters would otherwise freeze in place).
                let unit = format!("{side}{}", id.0);
                registry.unregister_labeled("joiner", &unit);
                registry.unregister_labeled("pod", &unit);
                false
            } else {
                true
            }
        });
    }
}

/// Builder for [`BicliqueEngine`].
pub struct EngineBuilder {
    config: EngineConfig,
    routers: usize,
    delivery: DeliveryMode,
    cost: CostModel,
    auto_pump: bool,
    obs: Option<Observability>,
    auditor: Option<Auditor>,
    chaos: Option<FaultPlan>,
    engine_label: String,
}

impl EngineBuilder {
    /// Use `k` router instances (round-robin ingest).
    pub fn routers(mut self, k: usize) -> Self {
        self.routers = k.max(1);
        self
    }

    /// Share an externally owned observability bundle (registry +
    /// journal) instead of creating a private one — this is how the
    /// simulator and the live pipeline expose broker, cluster and engine
    /// series through a single scrape.
    pub fn observability(mut self, obs: Observability) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The `engine` label value on engine-wide series (default
    /// `"engine"`; the harnesses use `"sim"` / `"live"`).
    pub fn engine_label(mut self, label: impl Into<String>) -> Self {
        self.engine_label = label.into();
        self
    }

    /// Attach a specific protocol-invariant auditor. Without this call,
    /// debug builds self-arm via [`Auditor::new_if_debug`] and release
    /// builds run unaudited; pass an explicit auditor to observe the
    /// engine from outside (shared across engines, or armed with the
    /// output oracle in a release-mode harness).
    pub fn auditor(mut self, auditor: Auditor) -> Self {
        self.auditor = Some(auditor);
        self
    }

    /// Delivery schedule (default in-order).
    pub fn delivery(mut self, mode: DeliveryMode) -> Self {
        self.delivery = mode;
        self
    }

    /// Arm plan-driven fault injection: delivery runs on a
    /// [`ChaosNet`] executing `plan` (the configured
    /// [`delivery`](EngineBuilder::delivery) mode is bypassed), sends
    /// refused by a partition retry with capped exponential backoff, and
    /// the plan's crash events trigger
    /// [`BicliqueEngine::crash_unit`] drills.
    ///
    /// Crash replays deduplicate results by identity, so chaos workloads
    /// must use pairwise-distinct tuples (distinct `(ts, values)`), or
    /// genuinely duplicate results would be suppressed.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// CPU cost model charged to joiner meters.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Disable automatic pumping after each ingest/punctuate.
    pub fn manual_pump(mut self) -> Self {
        self.auto_pump = false;
        self
    }

    /// Construct the engine.
    pub fn build(self) -> Result<BicliqueEngine> {
        self.config.validate()?;
        let subgroups = match self.config.routing {
            RoutingStrategy::ContRand { subgroups } | RoutingStrategy::Adaptive { subgroups } => {
                subgroups
            }
            _ => 1,
        };
        let layout = Layout::new(self.config.r_joiners, self.config.s_joiners, subgroups)?;
        // One shared sequence counter across all routers (see RouterCore).
        let seq = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let obs = self.obs.unwrap_or_default();
        let auditor = self.auditor.or_else(Auditor::new_if_debug);
        if let Some(a) = &auditor {
            a.attach_journal(obs.journal.clone());
        }
        // Adaptive routing: one shared tuner for all routers. Superseded
        // probe coverage must outlive the join window, measured in
        // punctuation ticks (FullHistory pins it forever).
        let adaptive = match self.config.routing {
            RoutingStrategy::Adaptive { subgroups } => {
                let punct = self.config.punctuation_interval_ms.max(1);
                let retire_ticks = match self.config.window.size() {
                    Some(w) => (w / punct).saturating_add(2),
                    None => u64::MAX / 2,
                };
                let max_subgroups = self.config.r_joiners.min(self.config.s_joiners).max(1);
                Some(AdaptiveShared::new(
                    self.config.adaptive,
                    self.routers,
                    subgroups,
                    max_subgroups,
                    retire_ticks,
                    self.config.seed,
                ))
            }
            _ => None,
        };
        let routers: Vec<RouterCore> = (0..self.routers)
            .map(|i| {
                let mut r = RouterCore::new(
                    i as RouterId,
                    self.config.routing,
                    self.config.predicate.clone(),
                    self.config.seed,
                    Arc::clone(&seq),
                );
                r.set_batch_size(self.config.batch_size);
                r.attach_registry(&obs.registry);
                r.attach_tracer(obs.tracer.clone());
                if let Some(a) = &auditor {
                    r.set_auditor(a.clone());
                }
                if let Some(sh) = &adaptive {
                    r.attach_adaptive(sh.handle(i as RouterId));
                }
                r
            })
            .collect();
        let frontiers: Vec<(RouterId, SeqNo)> = routers.iter().map(|r| (r.id(), 0)).collect();
        let stats = EngineStats::shared();
        stats.register_into(&obs.registry, &[("engine", &self.engine_label)]);
        let mut engine = BicliqueEngine {
            cost: self.cost,
            layout: layout.clone(),
            routers,
            rr_next: 0,
            joiners: FxHashMap::default(),
            draining: Vec::new(),
            historical: Vec::new(),
            net: ChannelNet::new(self.delivery),
            chaos: self.chaos.map(ChaosState::new),
            stats,
            obs,
            adaptive,
            auditor,
            capture: None,
            auto_pump: self.auto_pump,
            now: 0,
            scratch: Vec::new(),
            config: self.config,
        };
        for (side, id) in layout.all_units() {
            let joiner = engine.make_joiner(id, side, &frontiers);
            engine.joiners.insert(id, joiner);
        }
        Ok(engine)
    }
}

impl std::fmt::Debug for BicliqueEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BicliqueEngine")
            .field("layout", &self.layout)
            .field("routers", &self.routers.len())
            .field("draining", &self.draining.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::predicate::JoinPredicate;
    use bistream_types::value::Value;
    use bistream_types::window::WindowSpec;

    fn t(rel: Rel, ts: Ts, k: i64) -> Tuple {
        Tuple::new(rel, ts, vec![Value::Int(k)])
    }

    fn cfg(routing: RoutingStrategy) -> EngineConfig {
        EngineConfig {
            r_joiners: 2,
            s_joiners: 2,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(1_000),
            routing,
            archive_period_ms: 100,
            punctuation_interval_ms: 20,
            ordering: true,
            seed: 1,
            batch_size: 1,
            adaptive: Default::default(),
        }
    }

    /// Feed matched pairs and check exactly-once results.
    fn run_pairs(mut engine: BicliqueEngine, pairs: usize) -> Vec<JoinResult> {
        engine.capture_results();
        let mut now = 0;
        for i in 0..pairs {
            now = (i as Ts) * 10;
            engine.ingest(&t(Rel::R, now, i as i64), now).unwrap();
            engine.ingest(&t(Rel::S, now + 1, i as i64), now + 1).unwrap();
            engine.punctuate(now + 2).unwrap();
        }
        engine.punctuate(now + 10).unwrap();
        engine.take_captured()
    }

    #[test]
    fn equi_join_exactly_once_under_all_strategies() {
        for routing in [
            RoutingStrategy::Random,
            RoutingStrategy::Hash,
            RoutingStrategy::ContRand { subgroups: 2 },
        ] {
            let engine = BicliqueEngine::new(cfg(routing)).unwrap();
            let results = run_pairs(engine, 20);
            assert_eq!(results.len(), 20, "{routing:?}: one result per matched pair");
            // Each pair's key matches.
            for r in &results {
                assert_eq!(r.r.get(0), r.s.get(0));
            }
        }
    }

    #[test]
    fn no_matches_across_different_keys() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Hash)).unwrap();
        engine.capture_results();
        engine.ingest(&t(Rel::R, 0, 1), 0).unwrap();
        engine.ingest(&t(Rel::S, 1, 2), 1).unwrap();
        engine.punctuate(5).unwrap();
        assert!(engine.take_captured().is_empty());
    }

    #[test]
    fn window_bounds_matches() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Hash)).unwrap();
        engine.capture_results();
        engine.ingest(&t(Rel::R, 0, 7), 0).unwrap();
        engine.ingest(&t(Rel::S, 2_000, 7), 2_000).unwrap();
        engine.punctuate(2_100).unwrap();
        assert!(engine.take_captured().is_empty(), "2s apart, 1s window");
    }

    #[test]
    fn results_are_exact_against_reference_join() {
        // Random keys with repetition; compare against a brute-force join.
        let mut engine = BicliqueEngine::builder(cfg(RoutingStrategy::ContRand { subgroups: 2 }))
            .routers(2)
            .build()
            .unwrap();
        engine.capture_results();
        let mut tuples = Vec::new();
        let mut now = 0;
        for i in 0..200i64 {
            now = i as Ts * 7;
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            let tup = t(rel, now, i % 13);
            engine.ingest(&tup, now).unwrap();
            tuples.push(tup);
            if i % 5 == 0 {
                engine.punctuate(now).unwrap();
            }
        }
        engine.punctuate(now + 100).unwrap();
        let mut got: Vec<_> = engine.take_captured().iter().map(|r| r.identity()).collect();
        got.sort();
        let mut expect = Vec::new();
        for a in tuples.iter().filter(|x| x.rel() == Rel::R) {
            for b in tuples.iter().filter(|x| x.rel() == Rel::S) {
                if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= 1_000 {
                    expect.push(JoinResult::of(a.clone(), b.clone()).identity());
                }
            }
        }
        expect.sort();
        assert_eq!(got.len(), expect.len(), "exactly-once, no dup/miss");
        assert_eq!(got, expect);
    }

    #[test]
    fn scale_out_mid_stream_loses_nothing() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Hash)).unwrap();
        engine.capture_results();
        let mut expected = 0usize;
        let mut now = 0;
        for i in 0..30i64 {
            now = i as Ts * 10;
            engine.ingest(&t(Rel::R, now, i), now).unwrap();
            if i == 15 {
                let (added, removed) = engine.scale_to(Rel::R, 4, now).unwrap();
                assert_eq!(added.len(), 2);
                assert!(removed.is_empty());
            }
        }
        // Probe every key; all 30 stored R tuples are within the window of
        // their matching S tuple.
        for i in 0..30i64 {
            let ts = now + 1 + i as Ts;
            engine.ingest(&t(Rel::S, ts, i), ts).unwrap();
            expected += 1;
        }
        engine.punctuate(now + 100).unwrap();
        let got = engine.take_captured();
        assert_eq!(got.len(), expected, "pre-scale state still probed (historical layout)");
    }

    #[test]
    fn scale_in_drains_without_losing_results() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Random)).unwrap();
        engine.capture_results();
        // Store 20 R tuples across 2 units.
        for i in 0..20i64 {
            engine.ingest(&t(Rel::R, i as Ts, i), i as Ts).unwrap();
        }
        engine.punctuate(25).unwrap();
        // Retire one R unit: it must drain, not vanish.
        let (_, removed) = engine.scale_to(Rel::R, 1, 30).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(engine.draining_units(), 1);
        // All 20 keys must still match.
        for i in 0..20i64 {
            let ts = 40 + i as Ts;
            engine.ingest(&t(Rel::S, ts, i), ts).unwrap();
        }
        engine.punctuate(100).unwrap();
        assert_eq!(engine.take_captured().len(), 20);
        // After a full window passes, the drained unit retires.
        engine.ingest(&t(Rel::S, 5_000, 999), 5_000).unwrap();
        engine.punctuate(5_001).unwrap();
        assert_eq!(engine.draining_units(), 0, "drained unit retired");
    }

    #[test]
    fn communication_cost_matches_analytics() {
        // Random: 1 store + m join copies per tuple.
        let mut c = cfg(RoutingStrategy::Random);
        c.r_joiners = 4;
        c.s_joiners = 4;
        let engine = BicliqueEngine::new(c).unwrap();
        let results = run_pairs(engine, 10);
        assert_eq!(results.len(), 10);
        // Hash: exactly 2 copies per tuple.
        let mut c = cfg(RoutingStrategy::Hash);
        c.r_joiners = 4;
        c.s_joiners = 4;
        let mut engine = BicliqueEngine::new(c).unwrap();
        for i in 0..10 {
            engine.ingest(&t(Rel::R, i, i as i64), i).unwrap();
        }
        assert_eq!(engine.stats().copies_per_tuple(), 2.0);
    }

    #[test]
    fn load_balance_metrics_exposed() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Random)).unwrap();
        for i in 0..100 {
            engine.ingest(&t(Rel::R, i, i as i64), i).unwrap();
        }
        engine.punctuate(200).unwrap();
        let stored = engine.stored_per_joiner(Rel::R);
        assert_eq!(stored.len(), 2);
        assert_eq!(stored.iter().sum::<u64>(), 100);
        assert!(stored.iter().all(|&c| c > 20), "random spreads: {stored:?}");
        assert!(engine.memory_bytes(Rel::R) > 0);
        assert_eq!(engine.memory_bytes(Rel::S), 0);
    }

    #[test]
    fn multiple_routers_preserve_exactly_once() {
        let engine =
            BicliqueEngine::builder(cfg(RoutingStrategy::Random)).routers(3).build().unwrap();
        let results = run_pairs(engine, 30);
        assert_eq!(results.len(), 30);
    }

    #[test]
    fn router_tier_scales_out_and_in_without_corrupting_results() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Random)).unwrap();
        engine.capture_results();
        let mut now = 0;
        for i in 0..10i64 {
            now = i as Ts * 10;
            engine.ingest(&t(Rel::R, now, i), now).unwrap();
            engine.ingest(&t(Rel::S, now, i), now).unwrap();
        }
        // Scale the router tier out mid-stream…
        let new_router = engine.add_router();
        assert_eq!(engine.routers(), 2);
        assert_eq!(new_router, 1);
        for i in 10..20i64 {
            now = i as Ts * 10;
            engine.ingest(&t(Rel::R, now, i), now).unwrap();
            engine.ingest(&t(Rel::S, now, i), now).unwrap();
        }
        engine.punctuate(now + 1).unwrap();
        // …and back in.
        engine.remove_router().unwrap();
        assert_eq!(engine.routers(), 1);
        for i in 20..30i64 {
            now = i as Ts * 10;
            engine.ingest(&t(Rel::R, now, i), now).unwrap();
            engine.ingest(&t(Rel::S, now, i), now).unwrap();
        }
        engine.punctuate(now + 1).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.take_captured().len(), 30, "one result per pair throughout");
        assert!(engine.remove_router().is_err(), "last router cannot retire");
    }

    #[test]
    fn removing_a_router_unblocks_the_watermark() {
        // Two routers; only router 0 keeps punctuating after router 1
        // retires. Without deregistration the watermark would stall.
        let mut engine =
            BicliqueEngine::builder(cfg(RoutingStrategy::Random)).routers(2).build().unwrap();
        engine.capture_results();
        for i in 0..10i64 {
            engine.ingest(&t(Rel::R, i as Ts, i), i as Ts).unwrap();
            engine.ingest(&t(Rel::S, i as Ts, i), i as Ts).unwrap();
        }
        engine.remove_router().unwrap();
        // Only the surviving router punctuates from here on.
        engine.punctuate(100).unwrap();
        assert_eq!(engine.take_captured().len(), 10);
    }

    #[test]
    fn subgroup_adjustment_keeps_matching_across_the_transition() {
        let mut c = cfg(RoutingStrategy::ContRand { subgroups: 1 });
        c.r_joiners = 4;
        c.s_joiners = 4;
        let mut engine = BicliqueEngine::new(c).unwrap();
        engine.capture_results();
        // Store 20 R tuples under d=1.
        for i in 0..20i64 {
            engine.ingest(&t(Rel::R, i as Ts, i), i as Ts).unwrap();
        }
        engine.set_subgroups(4, 25).unwrap();
        // Probe all keys under d=4: historical-layout routing must still
        // reach the tuples stored under d=1's placement.
        for i in 0..20i64 {
            let ts = 30 + i as Ts;
            engine.ingest(&t(Rel::S, ts, i), ts).unwrap();
        }
        engine.punctuate(100).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.take_captured().len(), 20);
        assert_eq!(engine.layout().subgroups(), 4);
    }

    #[test]
    fn subgroup_adjustment_rejected_for_non_contrand() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Hash)).unwrap();
        assert!(engine.set_subgroups(2, 0).is_err());
    }

    #[test]
    fn unified_scrape_covers_engine_router_joiner_and_pod_series() {
        let mut engine = BicliqueEngine::builder(cfg(RoutingStrategy::Hash))
            .engine_label("sim")
            .build()
            .unwrap();
        engine.capture_results();
        engine.ingest(&t(Rel::R, 10, 1), 10).unwrap();
        engine.ingest(&t(Rel::S, 20, 1), 20).unwrap();
        engine.punctuate(25).unwrap();
        engine.scale_to(Rel::R, 3, 30).unwrap();

        let snap = engine.observability().registry.scrape(30);
        assert_eq!(snap.counter("bistream_tuples_ingested_total", &[("engine", "sim")]), Some(2));
        let decisions = snap.counter(
            "bistream_router_route_decisions_total",
            &[("router", "r0"), ("strategy", "hash")],
        );
        assert_eq!(decisions, Some(2));
        // Both R units register joiner + pod series; the stored tuple
        // lands on exactly one of them.
        let stored: u64 = ["R0", "R1"]
            .iter()
            .map(|u| snap.counter("bistream_joiner_stored_total", &[("joiner", u)]).unwrap())
            .sum();
        assert_eq!(stored, 1);
        assert!(snap.get("bistream_pod_cpu_busy_us_total", &[("pod", "R0")]).is_some());
        assert!(snap.get("bistream_index_live_tuples", &[("joiner", "S0")]).is_none());
        assert!(snap.get("bistream_index_live_tuples", &[("joiner", "S2")]).is_some());

        let events = engine.observability().journal.drain();
        let scale = events
            .iter()
            .find(|e| e.kind.tag() == "ScaleDecision")
            .expect("scale decision journaled");
        assert_eq!(scale.ts, 30);
        assert!(matches!(scale.kind, EventKind::ScaleDecision { side: Rel::R, from: 2, to: 3 }));
        assert!(events.iter().any(|e| e.kind.tag() == "TupleStored"));
        assert!(events.iter().any(|e| e.kind.tag() == "JoinEmitted"));
    }

    fn chaos_engine(plan: bistream_types::fault::FaultPlan) -> BicliqueEngine {
        let auditor = Auditor::new();
        auditor.enable_oracle(WindowSpec::sliding(1_000).size());
        let mut engine = BicliqueEngine::builder(cfg(RoutingStrategy::Hash))
            .auditor(auditor)
            .chaos(plan)
            .build()
            .unwrap();
        engine.capture_results();
        engine
    }

    #[test]
    fn crash_recover_drill_preserves_exactly_once() {
        let mut engine = chaos_engine(bistream_types::fault::FaultPlan::none());
        // Store 30 distinct R tuples; checkpoint after the first 20.
        let mut now = 0;
        for i in 0..30i64 {
            now = i as Ts * 10;
            engine.ingest(&t(Rel::R, now, i), now).unwrap();
            if i % 4 == 3 {
                engine.punctuate(now + 1).unwrap();
            }
            if i == 19 {
                engine.punctuate(now + 1).unwrap();
                engine.checkpoint_all().unwrap();
            }
        }
        // Crash every R unit: snapshot re-hydration covers the first 20,
        // log replay the last 10.
        for id in engine.layout().units(Rel::R).to_vec() {
            engine.crash_unit(id).unwrap();
        }
        engine.pump().unwrap();
        // Probe every key.
        for i in 0..30i64 {
            let ts = 400 + i as Ts;
            engine.ingest(&t(Rel::S, ts, i), ts).unwrap();
        }
        engine.punctuate(500).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.take_captured().len(), 30, "no loss, no duplicates across the crash");
        assert_eq!(engine.crashes_fired(), 2);
        engine.auditor().unwrap().assert_clean();
    }

    #[test]
    fn crash_without_checkpoint_recovers_from_log_replay_alone() {
        let mut engine = chaos_engine(bistream_types::fault::FaultPlan::none());
        for i in 0..12i64 {
            engine.ingest(&t(Rel::R, i as Ts * 10, i), i as Ts * 10).unwrap();
        }
        engine.punctuate(125).unwrap();
        let unit = engine.layout().units(Rel::R)[0];
        assert_eq!(engine.crash_unit(unit).unwrap(), 0, "nothing checkpointed to re-hydrate");
        engine.pump().unwrap();
        for i in 0..12i64 {
            let ts = 200 + i as Ts;
            engine.ingest(&t(Rel::S, ts, i), ts).unwrap();
        }
        engine.punctuate(300).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.take_captured().len(), 12);
        engine.auditor().unwrap().assert_clean();
    }

    #[test]
    fn skip_rehydrate_bug_loses_checkpointed_state_and_the_oracle_sees_it() {
        let mut engine = chaos_engine(bistream_types::fault::FaultPlan::none());
        engine.debug_skip_rehydrate(true);
        for i in 0..20i64 {
            engine.ingest(&t(Rel::R, i as Ts * 10, i), i as Ts * 10).unwrap();
        }
        engine.punctuate(195).unwrap();
        engine.checkpoint_all().unwrap();
        for id in engine.layout().units(Rel::R).to_vec() {
            engine.crash_unit(id).unwrap();
        }
        engine.pump().unwrap();
        for i in 0..20i64 {
            let ts = 300 + i as Ts;
            engine.ingest(&t(Rel::S, ts, i), ts).unwrap();
        }
        engine.punctuate(400).unwrap();
        engine.flush().unwrap();
        assert!(
            engine.take_captured().len() < 20,
            "skipping re-hydration must lose checkpointed stores"
        );
        let violations = engine.auditor().unwrap().finish();
        assert!(
            violations.iter().any(|v| v.to_string().contains("oracle")),
            "output oracle must flag the missing results: {violations:?}"
        );
    }

    #[test]
    fn partitions_delay_but_never_lose_results() {
        use bistream_types::fault::{FaultEvent, FaultPlan};
        // Partition both R-side channels from router 0 for a while; the
        // retry queue must deliver everything eventually.
        let plan = FaultPlan {
            seed: 5,
            scenario: "partition".into(),
            events: vec![
                FaultEvent::Partition { router: 0, unit: 0, from_step: 2, until_step: 40 },
                FaultEvent::DelayChannel { router: 0, unit: 1, from_step: 5, until_step: 25 },
            ],
        };
        let mut engine = chaos_engine(plan);
        let mut now = 0;
        for i in 0..25i64 {
            now = i as Ts * 10;
            engine.ingest(&t(Rel::R, now, i), now).unwrap();
            engine.ingest(&t(Rel::S, now + 1, i), now + 1).unwrap();
            if i % 3 == 2 {
                engine.punctuate(now + 2).unwrap();
            }
        }
        engine.punctuate(now + 10).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.take_captured().len(), 25, "loss is modelled as delay + retry");
        engine.auditor().unwrap().assert_clean();
    }

    #[test]
    fn checkpoint_and_crash_require_an_armed_chaos_layer() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Hash)).unwrap();
        assert!(matches!(engine.checkpoint_all(), Err(Error::Fault(_))));
        assert!(matches!(engine.crash_unit(JoinerId(0)), Err(Error::Fault(_))));
        assert_eq!(engine.crashes_fired(), 0);
        assert_eq!(engine.chaos_step(), None);
    }

    #[test]
    fn pod_meters_follow_scaling() {
        let mut engine = BicliqueEngine::new(cfg(RoutingStrategy::Hash)).unwrap();
        assert_eq!(engine.pod_meters(Rel::R).len(), 2);
        engine.scale_to(Rel::R, 3, 0).unwrap();
        let meters = engine.pod_meters(Rel::R);
        assert_eq!(meters.len(), 3);
        let ids: Vec<usize> = meters.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), ids.iter().collect::<std::collections::HashSet<_>>().len());
        assert_eq!(engine.replicas(Rel::R), 3);
    }
}
