//! A schema-aware query layer on top of the engine configuration.
//!
//! The raw [`EngineConfig`] addresses join attributes by index; real
//! applications think in attribute *names* over typed schemas. A
//! [`QueryBuilder`] resolves names against the two relations' schemas,
//! type-checks the predicate (band joins need numeric attributes,
//! equality needs matching types), picks a routing strategy appropriate
//! to the predicate class unless overridden, and produces both the
//! engine configuration and a [`JoinQuery`] handle that validates input
//! tuples at the edge.

use crate::config::{AdaptiveTuning, EngineConfig, RoutingStrategy};
use bistream_types::error::{Error, Result};
use bistream_types::predicate::{CmpOp, JoinPredicate};
use bistream_types::rel::Rel;
use bistream_types::schema::Schema;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::ValueType;
use bistream_types::window::WindowSpec;

/// A resolved, validated join query over two stream schemas.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    r_schema: Schema,
    s_schema: Schema,
    config: EngineConfig,
}

impl JoinQuery {
    /// The engine configuration realising this query.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Consume into the engine configuration.
    pub fn into_config(self) -> EngineConfig {
        self.config
    }

    /// The schema of `side`'s stream.
    pub fn schema(&self, side: Rel) -> &Schema {
        match side {
            Rel::R => &self.r_schema,
            Rel::S => &self.s_schema,
        }
    }

    /// Validate an input tuple against its relation's schema (arity and
    /// attribute types) — the edge check a stream adapter runs before
    /// handing tuples to the engine.
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        self.schema(tuple.rel()).validate(tuple.values())
    }
}

/// The condition of a [`QueryBuilder`] (pre-resolution).
#[derive(Debug, Clone)]
enum Condition {
    Equal { r: String, s: String },
    Band { r: String, s: String, band: f64 },
    Theta { r: String, op: CmpOp, s: String },
    Cross,
}

/// Builder resolving named join conditions into an [`EngineConfig`].
///
/// ```
/// use bistream_core::query::QueryBuilder;
/// use bistream_types::schema::Schema;
/// use bistream_types::value::ValueType;
///
/// let orders = Schema::new("orders", vec![("id", ValueType::Int)])?;
/// let payments = Schema::new("payments", vec![("ref_id", ValueType::Int)])?;
/// let query = QueryBuilder::new(orders, payments)
///     .on_equal("id", "ref_id")
///     .window_ms(60_000)
///     .joiners(3, 3)
///     .build()?;
/// assert!(query.config().predicate.is_equi());
/// # Ok::<(), bistream_types::error::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    r_schema: Schema,
    s_schema: Schema,
    condition: Option<Condition>,
    window: WindowSpec,
    routing: Option<RoutingStrategy>,
    r_joiners: usize,
    s_joiners: usize,
    archive_period_ms: Option<Ts>,
    punctuation_interval_ms: Ts,
    ordering: bool,
    seed: u64,
    batch_size: usize,
    adaptive: AdaptiveTuning,
}

impl QueryBuilder {
    /// Start a query joining stream `r_schema` (relation R) with
    /// `s_schema` (relation S).
    pub fn new(r_schema: Schema, s_schema: Schema) -> QueryBuilder {
        QueryBuilder {
            r_schema,
            s_schema,
            condition: None,
            window: WindowSpec::sliding(10_000),
            routing: None,
            r_joiners: 2,
            s_joiners: 2,
            archive_period_ms: None,
            punctuation_interval_ms: 20,
            ordering: true,
            seed: 0xB1C1,
            batch_size: 1,
            adaptive: AdaptiveTuning::default(),
        }
    }

    /// Equi condition: `R.r_attr = S.s_attr`.
    pub fn on_equal(mut self, r_attr: &str, s_attr: &str) -> QueryBuilder {
        self.condition = Some(Condition::Equal { r: r_attr.into(), s: s_attr.into() });
        self
    }

    /// Band condition: `|R.r_attr − S.s_attr| ≤ band`.
    pub fn on_band(mut self, r_attr: &str, s_attr: &str, band: f64) -> QueryBuilder {
        self.condition = Some(Condition::Band { r: r_attr.into(), s: s_attr.into(), band });
        self
    }

    /// Inequality condition: `R.r_attr OP S.s_attr`.
    pub fn on_theta(mut self, r_attr: &str, op: CmpOp, s_attr: &str) -> QueryBuilder {
        self.condition = Some(Condition::Theta { r: r_attr.into(), op, s: s_attr.into() });
        self
    }

    /// Cartesian product (no condition).
    pub fn cross(mut self) -> QueryBuilder {
        self.condition = Some(Condition::Cross);
        self
    }

    /// Time-based sliding window of `ms` milliseconds (default 10 s).
    pub fn window_ms(mut self, ms: Ts) -> QueryBuilder {
        self.window = WindowSpec::sliding(ms);
        self
    }

    /// Join over the full stream history.
    pub fn full_history(mut self) -> QueryBuilder {
        self.window = WindowSpec::FullHistory;
        self
    }

    /// Joiner units per side (default 2×2).
    pub fn joiners(mut self, r: usize, s: usize) -> QueryBuilder {
        self.r_joiners = r;
        self.s_joiners = s;
        self
    }

    /// Override the automatically chosen routing strategy.
    pub fn routing(mut self, routing: RoutingStrategy) -> QueryBuilder {
        self.routing = Some(routing);
        self
    }

    /// Archive period of the chained index (default `window / 20`).
    pub fn archive_period_ms(mut self, ms: Ts) -> QueryBuilder {
        self.archive_period_ms = Some(ms);
        self
    }

    /// Punctuation interval of the ordering protocol (default 20 ms).
    pub fn punctuation_interval_ms(mut self, ms: Ts) -> QueryBuilder {
        self.punctuation_interval_ms = ms;
        self
    }

    /// Disable the ordering protocol (at-least/at-most-once results
    /// under reordering; see experiment E7 before doing this).
    pub fn without_ordering(mut self) -> QueryBuilder {
        self.ordering = false;
        self
    }

    /// Seed for routing randomness.
    pub fn seed(mut self, seed: u64) -> QueryBuilder {
        self.seed = seed;
        self
    }

    /// Tuples per [`bistream_types::TupleBatch`] frame on every
    /// router→joiner channel (default 1: per-tuple framing).
    pub fn batch_size(mut self, tuples: usize) -> QueryBuilder {
        self.batch_size = tuples;
        self
    }

    /// Tuning knobs for [`RoutingStrategy::Adaptive`] (tuning cadence,
    /// hot-tier capacity and thresholds); ignored under the static
    /// strategies.
    pub fn adaptive_tuning(mut self, tuning: AdaptiveTuning) -> QueryBuilder {
        self.adaptive = tuning;
        self
    }

    /// Resolve names, type-check, choose routing, and produce the query.
    ///
    /// # Errors
    /// [`Error::Schema`] for unknown attributes or type mismatches;
    /// [`Error::Config`] for a missing condition or an invalid topology.
    pub fn build(mut self) -> Result<JoinQuery> {
        let condition = self.condition.take().ok_or_else(|| {
            Error::Config("query needs a join condition (on_equal/on_band/on_theta/cross)".into())
        })?;

        let predicate = match &condition {
            Condition::Cross => JoinPredicate::Cross,
            Condition::Equal { r, s } => {
                let (ri, rt) = self.attr(Rel::R, r)?;
                let (si, st) = self.attr(Rel::S, s)?;
                if rt != st && !numeric_pair(rt, st) {
                    return Err(Error::Schema(format!(
                        "cannot equate `{r}` ({rt:?}) with `{s}` ({st:?})"
                    )));
                }
                JoinPredicate::Equi { r_attr: ri, s_attr: si }
            }
            Condition::Band { r, s, band } => {
                let (ri, rt) = self.attr(Rel::R, r)?;
                let (si, st) = self.attr(Rel::S, s)?;
                for (name, ty) in [(r, rt), (s, st)] {
                    if !matches!(ty, ValueType::Int | ValueType::Float) {
                        return Err(Error::Schema(format!(
                            "band join needs numeric attributes; `{name}` is {ty:?}"
                        )));
                    }
                }
                if *band < 0.0 {
                    return Err(Error::Config(format!("band must be non-negative, got {band}")));
                }
                JoinPredicate::Band { r_attr: ri, s_attr: si, band: *band }
            }
            Condition::Theta { r, op, s } => {
                let (ri, rt) = self.attr(Rel::R, r)?;
                let (si, st) = self.attr(Rel::S, s)?;
                if rt != st && !numeric_pair(rt, st) {
                    return Err(Error::Schema(format!(
                        "cannot compare `{r}` ({rt:?}) with `{s}` ({st:?})"
                    )));
                }
                JoinPredicate::Theta { r_attr: ri, s_attr: si, op: *op }
            }
        };

        // Routing: content-sensitive only applies to equi predicates.
        let routing = match self.routing {
            Some(r) => r,
            None if predicate.is_equi() => RoutingStrategy::Hash,
            None => RoutingStrategy::Random,
        };

        let archive_period_ms = self
            .archive_period_ms
            .unwrap_or_else(|| self.window.size().map(|w| (w / 20).max(1)).unwrap_or(1_000));
        let config = EngineConfig {
            r_joiners: self.r_joiners,
            s_joiners: self.s_joiners,
            predicate,
            window: self.window,
            routing,
            archive_period_ms,
            punctuation_interval_ms: self.punctuation_interval_ms,
            ordering: self.ordering,
            seed: self.seed,
            batch_size: self.batch_size,
            adaptive: self.adaptive,
        };
        config.validate()?;
        Ok(JoinQuery { r_schema: self.r_schema, s_schema: self.s_schema, config })
    }

    fn attr(&self, side: Rel, name: &str) -> Result<(usize, ValueType)> {
        let schema = match side {
            Rel::R => &self.r_schema,
            Rel::S => &self.s_schema,
        };
        let idx = schema.require(name)?;
        Ok((idx, schema.attributes()[idx].ty))
    }
}

fn numeric_pair(a: ValueType, b: ValueType) -> bool {
    matches!(a, ValueType::Int | ValueType::Float) && matches!(b, ValueType::Int | ValueType::Float)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::schema::TupleBuilder;
    use bistream_types::value::Value;

    fn orders() -> Schema {
        Schema::new(
            "orders",
            vec![
                ("order_id", ValueType::Int),
                ("amount", ValueType::Float),
                ("who", ValueType::Str),
            ],
        )
        .unwrap()
    }

    fn payments() -> Schema {
        Schema::new("payments", vec![("ref_id", ValueType::Int), ("paid", ValueType::Float)])
            .unwrap()
    }

    #[test]
    fn equi_query_resolves_names_and_picks_hash_routing() {
        let q = QueryBuilder::new(orders(), payments())
            .on_equal("order_id", "ref_id")
            .window_ms(5_000)
            .joiners(3, 2)
            .build()
            .unwrap();
        let cfg = q.config();
        assert_eq!(cfg.predicate, JoinPredicate::Equi { r_attr: 0, s_attr: 0 });
        assert_eq!(cfg.routing, RoutingStrategy::Hash);
        assert_eq!((cfg.r_joiners, cfg.s_joiners), (3, 2));
        assert_eq!(cfg.window.size(), Some(5_000));
        assert_eq!(cfg.archive_period_ms, 250, "defaults to window/20");
    }

    #[test]
    fn band_query_needs_numeric_attrs_and_routes_random() {
        let q =
            QueryBuilder::new(orders(), payments()).on_band("amount", "paid", 0.5).build().unwrap();
        assert_eq!(q.config().routing, RoutingStrategy::Random);
        assert!(matches!(q.config().predicate, JoinPredicate::Band { r_attr: 1, s_attr: 1, .. }));

        let err = QueryBuilder::new(orders(), payments()).on_band("who", "paid", 0.5).build();
        assert!(matches!(err, Err(Error::Schema(_))));
        let err = QueryBuilder::new(orders(), payments()).on_band("amount", "paid", -1.0).build();
        assert!(matches!(err, Err(Error::Config(_))));
    }

    #[test]
    fn theta_and_cross_queries() {
        let q = QueryBuilder::new(orders(), payments())
            .on_theta("amount", CmpOp::Gt, "paid")
            .full_history()
            .build()
            .unwrap();
        assert!(matches!(q.config().predicate, JoinPredicate::Theta { op: CmpOp::Gt, .. }));
        assert_eq!(q.config().window, WindowSpec::FullHistory);

        let q = QueryBuilder::new(orders(), payments()).cross().build().unwrap();
        assert_eq!(q.config().predicate, JoinPredicate::Cross);
    }

    #[test]
    fn missing_condition_and_unknown_attribute_error() {
        assert!(matches!(QueryBuilder::new(orders(), payments()).build(), Err(Error::Config(_))));
        assert!(matches!(
            QueryBuilder::new(orders(), payments()).on_equal("nope", "ref_id").build(),
            Err(Error::Schema(_))
        ));
    }

    #[test]
    fn type_mismatch_on_equality_rejected_numeric_pair_allowed() {
        // Str vs Float: rejected.
        assert!(QueryBuilder::new(orders(), payments()).on_equal("who", "paid").build().is_err());
        // Int vs Float: allowed (Value compares numerically).
        assert!(QueryBuilder::new(orders(), payments())
            .on_equal("order_id", "paid")
            .build()
            .is_ok());
    }

    #[test]
    fn adaptive_routing_and_tuning_flow_into_the_config() {
        let tuning = AdaptiveTuning { tune_every_puncts: 9, hot_capacity: 5, ..Default::default() };
        let q = QueryBuilder::new(orders(), payments())
            .on_equal("order_id", "ref_id")
            .routing(RoutingStrategy::Adaptive { subgroups: 2 })
            .adaptive_tuning(tuning)
            .build()
            .unwrap();
        assert_eq!(q.config().routing, RoutingStrategy::Adaptive { subgroups: 2 });
        assert_eq!(q.config().adaptive, tuning);
        // Adaptive is content-sensitive in its cold tier: equi only.
        let err = QueryBuilder::new(orders(), payments())
            .on_band("amount", "paid", 1.0)
            .routing(RoutingStrategy::Adaptive { subgroups: 2 })
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn routing_override_is_validated() {
        // ContRand on a band join must be rejected by config validation.
        let err = QueryBuilder::new(orders(), payments())
            .on_band("amount", "paid", 1.0)
            .routing(RoutingStrategy::ContRand { subgroups: 2 })
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn query_validates_edge_tuples() {
        let q =
            QueryBuilder::new(orders(), payments()).on_equal("order_id", "ref_id").build().unwrap();
        let good = TupleBuilder::new(q.schema(Rel::R), Rel::R, 1)
            .set("order_id", 7i64)
            .unwrap()
            .build()
            .unwrap();
        assert!(q.validate(&good).is_ok());
        let bad = Tuple::new(Rel::S, 1, vec![Value::Str("x".into()), Value::Float(1.0)]);
        assert!(q.validate(&bad).is_err());
    }

    #[test]
    fn query_runs_end_to_end_on_the_engine() {
        let q = QueryBuilder::new(orders(), payments())
            .on_equal("order_id", "ref_id")
            .window_ms(1_000)
            .seed(3)
            .build()
            .unwrap();
        let mut engine = crate::engine::BicliqueEngine::new(q.clone().into_config()).unwrap();
        engine.capture_results();
        let r = TupleBuilder::new(q.schema(Rel::R), Rel::R, 10)
            .set("order_id", 42i64)
            .unwrap()
            .set("amount", 9.5)
            .unwrap()
            .build()
            .unwrap();
        let s = TupleBuilder::new(q.schema(Rel::S), Rel::S, 20)
            .set("ref_id", 42i64)
            .unwrap()
            .set("paid", 9.5)
            .unwrap()
            .build()
            .unwrap();
        q.validate(&r).unwrap();
        q.validate(&s).unwrap();
        engine.ingest(&r, 10).unwrap();
        engine.ingest(&s, 20).unwrap();
        engine.punctuate(40).unwrap();
        assert_eq!(engine.take_captured().len(), 1);
    }
}
