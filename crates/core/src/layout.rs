//! The mutable biclique topology.
//!
//! A `Layout` names the joiner units currently serving each side and, for
//! ContRand routing, partitions each side into subgroups. Unit ids are
//! never reused: scaling out mints fresh ids and scaling in retires the
//! most recently added units, so metric trackers and queues can tell a new
//! unit from a dead one.
//!
//! Subgroup assignment is positional — unit `i` of a side belongs to
//! subgroup `i mod d` — which keeps subgroups balanced (sizes differ by at
//! most one) as the side grows and shrinks.

use bistream_types::error::{Error, Result};
use bistream_types::rel::Rel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of one joiner unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JoinerId(pub u32);

impl fmt::Display for JoinerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// The current biclique shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    r_units: Vec<JoinerId>,
    s_units: Vec<JoinerId>,
    /// Subgroups per side (`d`); 1 means "no subgrouping".
    subgroups: usize,
    next_id: u32,
    /// Monotonically increasing version, bumped on every change; routers
    /// compare versions to notice layout updates.
    version: u64,
}

impl Layout {
    /// A fresh layout with `n` R-units, `m` S-units and `d` subgroups.
    pub fn new(n: usize, m: usize, subgroups: usize) -> Result<Layout> {
        if n == 0 || m == 0 {
            return Err(Error::Config("layout needs at least one unit per side".into()));
        }
        let d = subgroups.max(1);
        if d > n || d > m {
            return Err(Error::Config(format!(
                "{d} subgroups need at least {d} units per side (have {n}×{m})"
            )));
        }
        let mut l = Layout {
            r_units: Vec::new(),
            s_units: Vec::new(),
            subgroups: d,
            next_id: 0,
            version: 0,
        };
        for _ in 0..n {
            let id = l.mint();
            l.r_units.push(id);
        }
        for _ in 0..m {
            let id = l.mint();
            l.s_units.push(id);
        }
        Ok(l)
    }

    fn mint(&mut self) -> JoinerId {
        let id = JoinerId(self.next_id);
        self.next_id += 1;
        self.version += 1;
        id
    }

    /// Units currently serving `side`.
    pub fn units(&self, side: Rel) -> &[JoinerId] {
        match side {
            Rel::R => &self.r_units,
            Rel::S => &self.s_units,
        }
    }

    /// All units of both sides, R first.
    pub fn all_units(&self) -> impl Iterator<Item = (Rel, JoinerId)> + '_ {
        self.r_units.iter().map(|&u| (Rel::R, u)).chain(self.s_units.iter().map(|&u| (Rel::S, u)))
    }

    /// Total number of units (`n + m`).
    pub fn total_units(&self) -> usize {
        self.r_units.len() + self.s_units.len()
    }

    /// Subgroup count `d`.
    pub fn subgroups(&self) -> usize {
        self.subgroups
    }

    /// Change version (bumped by every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The units of `side` belonging to subgroup `g` (positional
    /// assignment `i mod d`).
    pub fn subgroup_units(&self, side: Rel, g: usize) -> impl Iterator<Item = JoinerId> + '_ {
        let d = self.subgroups;
        self.units(side).iter().enumerate().filter(move |(i, _)| i % d == g % d).map(|(_, &u)| u)
    }

    /// Which subgroup unit `id` of `side` belongs to, if present.
    pub fn subgroup_of(&self, side: Rel, id: JoinerId) -> Option<usize> {
        self.units(side).iter().position(|&u| u == id).map(|i| i % self.subgroups)
    }

    /// Change the subgroup count `d` (ContRand adaptation). Requires at
    /// least `d` units on each side.
    pub fn set_subgroups(&mut self, d: usize) -> Result<()> {
        let d = d.max(1);
        if d > self.r_units.len() || d > self.s_units.len() {
            return Err(Error::Config(format!(
                "{d} subgroups need at least {d} units per side (have {}×{})",
                self.r_units.len(),
                self.s_units.len()
            )));
        }
        self.subgroups = d;
        self.version += 1;
        Ok(())
    }

    /// Grow `side` by one unit; returns the new unit's id.
    pub fn add_unit(&mut self, side: Rel) -> JoinerId {
        let id = self.mint();
        match side {
            Rel::R => self.r_units.push(id),
            Rel::S => self.s_units.push(id),
        }
        id
    }

    /// Retire the most recently added unit of `side`; returns its id.
    ///
    /// # Errors
    /// [`Error::Scaling`] when the side would become empty.
    pub fn remove_unit(&mut self, side: Rel) -> Result<JoinerId> {
        let units = match side {
            Rel::R => &mut self.r_units,
            Rel::S => &mut self.s_units,
        };
        let Some(id) = (units.len() > 1).then(|| units.pop()).flatten() else {
            return Err(Error::Scaling(format!("side {side} cannot drop below one unit")));
        };
        self.version += 1;
        Ok(id)
    }

    /// Resize `side` to exactly `n` units. Returns `(added, removed)` ids.
    pub fn resize(&mut self, side: Rel, n: usize) -> Result<(Vec<JoinerId>, Vec<JoinerId>)> {
        if n == 0 {
            return Err(Error::Scaling("cannot scale a side to zero units".into()));
        }
        if n < self.subgroups {
            return Err(Error::Scaling(format!(
                "cannot scale below subgroup count {}",
                self.subgroups
            )));
        }
        let mut added = Vec::new();
        let mut removed = Vec::new();
        while self.units(side).len() < n {
            added.push(self.add_unit(side));
        }
        while self.units(side).len() > n {
            removed.push(self.remove_unit(side)?);
        }
        Ok((added, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_assigns_unique_ids() {
        let l = Layout::new(3, 2, 1).unwrap();
        assert_eq!(l.units(Rel::R).len(), 3);
        assert_eq!(l.units(Rel::S).len(), 2);
        assert_eq!(l.total_units(), 5);
        let mut ids: Vec<u32> = l.all_units().map(|(_, j)| j.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "ids unique");
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(Layout::new(0, 1, 1).is_err());
        assert!(Layout::new(2, 2, 3).is_err(), "more subgroups than units");
        assert!(Layout::new(4, 4, 2).is_ok());
    }

    #[test]
    fn subgroups_partition_evenly() {
        let l = Layout::new(5, 4, 2).unwrap();
        let g0: Vec<_> = l.subgroup_units(Rel::R, 0).collect();
        let g1: Vec<_> = l.subgroup_units(Rel::R, 1).collect();
        assert_eq!(g0.len() + g1.len(), 5);
        assert!(g0.len().abs_diff(g1.len()) <= 1, "balanced");
        // Every unit is in exactly the subgroup subgroup_of reports.
        for (i, &u) in l.units(Rel::R).iter().enumerate() {
            assert_eq!(l.subgroup_of(Rel::R, u), Some(i % 2));
        }
    }

    #[test]
    fn scaling_mints_fresh_ids_and_retires_lifo() {
        let mut l = Layout::new(2, 2, 1).unwrap();
        let v0 = l.version();
        let new = l.add_unit(Rel::R);
        assert!(l.version() > v0);
        assert_eq!(l.units(Rel::R).len(), 3);
        let gone = l.remove_unit(Rel::R).unwrap();
        assert_eq!(gone, new, "LIFO retirement");
        // Ids are never reused.
        let again = l.add_unit(Rel::R);
        assert_ne!(again, new);
    }

    #[test]
    fn cannot_empty_a_side() {
        let mut l = Layout::new(1, 1, 1).unwrap();
        assert!(l.remove_unit(Rel::R).is_err());
        assert!(l.resize(Rel::S, 0).is_err());
    }

    #[test]
    fn resize_reports_delta() {
        let mut l = Layout::new(2, 2, 1).unwrap();
        let (added, removed) = l.resize(Rel::S, 5).unwrap();
        assert_eq!((added.len(), removed.len()), (3, 0));
        let (added, removed) = l.resize(Rel::S, 2).unwrap();
        assert_eq!((added.len(), removed.len()), (0, 3));
        assert_eq!(l.units(Rel::S).len(), 2);
    }

    #[test]
    fn set_subgroups_validates_and_bumps_version() {
        let mut l = Layout::new(4, 4, 1).unwrap();
        let v = l.version();
        l.set_subgroups(4).unwrap();
        assert_eq!(l.subgroups(), 4);
        assert!(l.version() > v);
        assert!(l.set_subgroups(5).is_err(), "more subgroups than units");
        l.set_subgroups(0).unwrap();
        assert_eq!(l.subgroups(), 1, "zero clamps to one");
    }

    #[test]
    fn resize_respects_subgroup_floor() {
        let mut l = Layout::new(4, 4, 2).unwrap();
        assert!(l.resize(Rel::R, 1).is_err());
        assert!(l.resize(Rel::R, 2).is_ok());
    }
}
