//! Hand-rolled bounded lock-free rings for the sharded runtime.
//!
//! Two shapes, both std-only (no `crossbeam`, no locks — this file is
//! tagged as a sharded-runtime hot path in `xtask.allow`, so `cargo
//! xtask lint` rule 7 rejects any `Mutex`/`RwLock` here, and `cargo
//! xtask analyze` enforces the per-field ordering protocols declared
//! next to each atomic below):
//!
//! - [`spsc`]: a single-producer single-consumer ring with plain
//!   acquire/release head/tail counters. One of these backs every
//!   `(router worker → joiner worker)` channel, which is exactly how the
//!   runtime preserves the pairwise-FIFO contract (Definition 8): a
//!   channel *is* a ring, and a ring cannot reorder.
//! - [`mpmc`]: a Vyukov-style slot-sequence ring for the competing
//!   consumer ingest edge (one pipeline feeder, N router workers).
//!
//! Both rings round capacity up to a power of two and index with a mask
//! over monotonically wrapping `usize` counters, so position arithmetic
//! stays consistent even across the `usize` wraparound boundary (the
//! mask divides `usize::MAX + 1`); sequence comparisons in the Vyukov
//! ring use signed differences for the same reason.
//!
//! Blocking is adaptive and lock-free: spin a few dozen iterations, then
//! yield, then `park_timeout` in short slices. No waker handshake is
//! needed — the timeout bounds wakeup latency to ~100µs, and under load
//! the rings are never empty long enough to park at all.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Pad to a cache line so the producer and consumer counters never
/// false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Spins before yielding in a blocking wait.
const SPIN_LIMIT: u32 = 64;
/// Yields before parking in a blocking wait.
const YIELD_LIMIT: u32 = 16;
/// Park slice once spinning and yielding have not produced progress.
const PARK_SLICE: Duration = Duration::from_micros(100);

/// One step of the adaptive wait: spin, then yield, then park briefly.
/// The bounded park slice is what makes waiting here sound without a
/// waker handshake; this is a `parkok`-audited backoff helper.
fn backoff(attempt: &mut u32) {
    *attempt = attempt.saturating_add(1);
    if *attempt <= SPIN_LIMIT {
        std::hint::spin_loop();
    } else if *attempt <= SPIN_LIMIT + YIELD_LIMIT {
        std::thread::yield_now();
    } else {
        std::thread::park_timeout(PARK_SLICE);
    }
}

// ---------------------------------------------------------------------
// SPSC
// ---------------------------------------------------------------------

struct SpscShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Capacity minus one; capacity is a power of two, so `pos & mask`
    /// indexes consistently even when the counters wrap `usize`.
    mask: usize,
    /// Consumer position (next slot to read).
    // protocol: field head relaxed-load / acquire-load / release-store
    head: CachePadded<AtomicUsize>,
    /// Producer position (next slot to write).
    // protocol: field tail relaxed-load / acquire-load / release-store
    tail: CachePadded<AtomicUsize>,
    // protocol: field closed acquire-load / release-store
    closed: AtomicBool,
}

// SAFETY: the ring hands out exactly one Producer and one Consumer; all
// slot access is fenced by the acquire/release head/tail protocol above,
// so a `T: Send` value only ever moves between threads, never aliases.
unsafe impl<T: Send> Send for SpscShared<T> {}
// SAFETY: shared access is limited to the atomic counters plus slots the
// head/tail protocol proves exclusive, so `&SpscShared` is safe to share
// between the one producer and one consumer thread.
unsafe impl<T: Send> Sync for SpscShared<T> {}

impl<T> Drop for SpscShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point; drop whatever is still queued. The
        // walk uses wrapping increments so a window that straddles the
        // `usize` boundary (head > tail numerically) still terminates.
        let mut head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        while head != tail {
            let slot = &self.buf[head & self.mask];
            // SAFETY: slots in [head, tail) were written and never read,
            // and `&mut self` proves no other thread can touch them.
            unsafe { (*slot.get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// Producer half of an [`spsc`] ring.
pub struct SpscProducer<T> {
    shared: Arc<SpscShared<T>>,
}

/// Consumer half of an [`spsc`] ring.
pub struct SpscConsumer<T> {
    shared: Arc<SpscShared<T>>,
}

/// A bounded single-producer single-consumer ring. Capacity is rounded
/// up to a power of two (minimum 1). FIFO per construction; no
/// allocation after creation.
pub fn spsc<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    spsc_with_origin(capacity, 0)
}

/// [`spsc`] with both counters starting at `origin` — lets tests place
/// the ring right below the `usize` wraparound boundary.
fn spsc_with_origin<T>(capacity: usize, origin: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(SpscShared {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(origin)),
        tail: CachePadded(AtomicUsize::new(origin)),
        closed: AtomicBool::new(false),
    });
    (SpscProducer { shared: Arc::clone(&shared) }, SpscConsumer { shared })
}

impl<T> SpscProducer<T> {
    /// Try to enqueue; gives the value back when the ring is full or the
    /// consumer side is gone.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let s = &*self.shared;
        if Arc::strong_count(&self.shared) == 1 {
            // Consumer dropped; nothing will ever drain the ring.
            return Err(value);
        }
        let tail = s.tail.0.load(Ordering::Relaxed);
        let head = s.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > s.mask {
            return Err(value); // full: the window already spans capacity
        }
        let slot = &s.buf[tail & s.mask];
        // SAFETY: slot at `tail` is outside [head, tail), i.e. empty, and
        // only this (single) producer writes slots.
        unsafe { (*slot.get()).write(value) };
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueue, waiting for space (spin → yield → park slices). Gives the
    /// value back only if the consumer side disappeared.
    pub fn push_blocking(&mut self, mut value: T) -> Result<(), T> {
        let mut attempt = 0;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(v) if Arc::strong_count(&self.shared) == 1 => return Err(v),
                Err(v) => value = v,
            }
            backoff(&mut attempt);
        }
    }

    /// Close the ring: the consumer drains what is queued, then sees
    /// end-of-stream. Idempotent.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.0.load(Ordering::Relaxed).wrapping_sub(s.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscProducer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> SpscConsumer<T> {
    /// Dequeue the next value, if any.
    pub fn try_pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed);
        let tail = s.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &s.buf[head & s.mask];
        // SAFETY: slot at `head` is inside [head, tail), i.e. written and
        // unread, and only this (single) consumer reads slots.
        let value = unsafe { (*slot.get()).assume_init_read() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Dequeue, waiting for a value. `None` means the producer closed the
    /// ring (or dropped) *and* everything queued has been drained — the
    /// two-phase-shutdown end-of-stream signal.
    pub fn pop_blocking(&mut self) -> Option<T> {
        let mut attempt = 0;
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.is_closed() || Arc::strong_count(&self.shared) == 1 {
                // Re-check after observing closed: a final frame may have
                // been pushed just before the close flag.
                return self.try_pop();
            }
            backoff(&mut attempt);
        }
    }

    /// Whether the producer has closed the ring. Queued frames may still
    /// be pending; end-of-stream is closed *and* empty.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.0.load(Ordering::Relaxed).wrapping_sub(s.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// MPMC (Vyukov slot-sequence ring)
// ---------------------------------------------------------------------

struct McSlot<T> {
    /// Slot state: `pos` ⇒ empty and claimable by the enqueuer at `pos`;
    /// `pos + 1` ⇒ written, claimable by the dequeuer at `pos`;
    /// `pos + cap` ⇒ read, claimable by the enqueuer at `pos + cap`.
    // protocol: field seq relaxed-load / acquire-load / release-store
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct MpmcShared<T> {
    buf: Box<[McSlot<T>]>,
    mask: usize,
    // protocol: field enqueue_pos relaxed-load / relaxed-rmw
    enqueue_pos: CachePadded<AtomicUsize>,
    // protocol: field dequeue_pos relaxed-load / relaxed-rmw
    dequeue_pos: CachePadded<AtomicUsize>,
    // Covered by the `closed` protocol header on `SpscShared` (headers
    // bind per file by field name): acquire-load / release-store.
    closed: AtomicBool,
}

// SAFETY: slot hand-off is fenced by the per-slot sequence protocol, so a
// `T: Send` value moves between threads with exclusive access at every
// step; the handle types only expose that protocol.
unsafe impl<T: Send> Send for MpmcShared<T> {}
// SAFETY: shared access goes through the atomic positions and per-slot
// sequences; a slot's value is only touched by the thread whose CAS won
// that position, so sharing `&MpmcShared` across threads is sound.
unsafe impl<T: Send> Sync for MpmcShared<T> {}

impl<T> Drop for MpmcShared<T> {
    fn drop(&mut self) {
        // Sole owner: the occupied slots are exactly the positions in
        // [dequeue_pos, enqueue_pos) whose sequence reads `pos + 1`
        // (written, not yet read — a skipped sequence means a producer
        // claimed the position but never completed the write).
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        let end = self.enqueue_pos.0.load(Ordering::Relaxed);
        while pos != end {
            let slot = &self.buf[pos & self.mask];
            if slot.seq.load(Ordering::Relaxed) == pos.wrapping_add(1) {
                // SAFETY: `&mut self` proves exclusive access, and the
                // sequence says the slot holds a written, unread value.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
            pos = pos.wrapping_add(1);
        }
    }
}

/// Producer handle for an [`mpmc`] ring (cloneable).
pub struct MpmcProducer<T> {
    shared: Arc<MpmcShared<T>>,
}

impl<T> Clone for MpmcProducer<T> {
    fn clone(&self) -> Self {
        MpmcProducer { shared: Arc::clone(&self.shared) }
    }
}

/// Consumer handle for an [`mpmc`] ring (cloneable — consumers compete).
pub struct MpmcConsumer<T> {
    shared: Arc<MpmcShared<T>>,
}

impl<T> Clone for MpmcConsumer<T> {
    fn clone(&self) -> Self {
        MpmcConsumer { shared: Arc::clone(&self.shared) }
    }
}

/// A bounded multi-producer multi-consumer ring. Capacity is rounded up
/// to a power of two (minimum 2 — with a single slot the sequence values
/// for "full at `pos`" and "empty at `pos + 1`" coincide, so the Vyukov
/// scheme cannot disambiguate them). Per-producer FIFO holds; competing
/// consumers interleave.
pub fn mpmc<T>(capacity: usize) -> (MpmcProducer<T>, MpmcConsumer<T>) {
    mpmc_with_origin(capacity, 0)
}

/// [`mpmc`] with both positions starting at `origin` — lets tests place
/// the ring right below the `usize` wraparound boundary.
fn mpmc_with_origin<T>(capacity: usize, origin: usize) -> (MpmcProducer<T>, MpmcConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let mask = cap - 1;
    // Slot j expects the first enqueue position p ≥ origin with
    // p & mask == j, i.e. origin plus j's offset within the first lap.
    let buf: Box<[McSlot<T>]> = (0..cap)
        .map(|j| McSlot {
            seq: AtomicUsize::new(origin.wrapping_add(j.wrapping_sub(origin) & mask)),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let shared = Arc::new(MpmcShared {
        buf,
        mask,
        enqueue_pos: CachePadded(AtomicUsize::new(origin)),
        dequeue_pos: CachePadded(AtomicUsize::new(origin)),
        closed: AtomicBool::new(false),
    });
    (MpmcProducer { shared: Arc::clone(&shared) }, MpmcConsumer { shared })
}

impl<T> MpmcProducer<T> {
    /// Try to enqueue; gives the value back when the ring is full or
    /// closed.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let s = &*self.shared;
        if s.closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let mut pos = s.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &s.buf[pos & s.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            // Signed distance keeps the comparison meaningful when the
            // positions wrap the usize range.
            let dist = seq.wrapping_sub(pos) as isize;
            if dist == 0 {
                match s.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives this producer
                        // exclusive write access to the slot.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if dist < 0 {
                return Err(value); // full
            } else {
                pos = s.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueue, waiting for space. Gives the value back only when the
    /// ring has been closed.
    pub fn push_blocking(&self, mut value: T) -> Result<(), T> {
        let mut attempt = 0;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(v) if self.shared.closed.load(Ordering::Acquire) => return Err(v),
                Err(v) => value = v,
            }
            backoff(&mut attempt);
        }
    }

    /// Close the ring: consumers drain what is queued, then see
    /// end-of-stream; further pushes are refused. Idempotent.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.enqueue_pos.0.load(Ordering::Relaxed).wrapping_sub(s.dequeue_pos.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> MpmcConsumer<T> {
    /// Dequeue the next value, if any.
    pub fn try_pop(&self) -> Option<T> {
        let s = &*self.shared;
        let mut pos = s.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &s.buf[pos & s.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            // Signed distance from the "written" state; see `try_push`.
            let dist = seq.wrapping_sub(pos.wrapping_add(1)) as isize;
            if dist == 0 {
                match s.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives this consumer
                        // exclusive read access to the slot.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos.wrapping_add(s.mask).wrapping_add(1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dist < 0 {
                return None; // empty
            } else {
                pos = s.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue, waiting for a value. `None` means the ring was closed and
    /// fully drained.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut attempt = 0;
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                return self.try_pop();
            }
            backoff(&mut attempt);
        }
    }

    /// Whether the ring has been closed. Queued frames may still be
    /// pending; end-of-stream is closed *and* empty.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.enqueue_pos.0.load(Ordering::Relaxed).wrapping_sub(s.dequeue_pos.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cross-thread volumes shrink under Miri, which interprets every
    /// memory access; the interleavings it explores don't need bulk.
    fn volume(n: u64) -> u64 {
        if cfg!(miri) {
            n.min(300)
        } else {
            n
        }
    }

    #[test]
    fn spsc_is_fifo_single_threaded() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(3).is_ok());
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn spsc_refuses_when_full_and_recovers() {
        let (mut tx, mut rx) = spsc::<u64>(2);
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert_eq!(tx.try_push(3), Err(3));
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(3).is_ok());
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn spsc_close_signals_end_of_stream_after_drain() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        assert!(tx.try_push(7).is_ok());
        tx.close();
        assert!(rx.is_closed());
        assert_eq!(rx.pop_blocking(), Some(7));
        assert_eq!(rx.pop_blocking(), None);
    }

    #[test]
    fn capacity_one_rings_disambiguate_full_from_empty() {
        // With one slot, "full" and "empty" meet: both mean head and tail
        // point at the same slot. The absolute counters (spsc) and the
        // slot sequence (mpmc) must still tell them apart.
        let (mut tx, mut rx) = spsc::<u64>(1);
        assert_eq!(rx.try_pop(), None, "empty at start");
        assert!(tx.try_push(1).is_ok());
        assert_eq!(tx.try_push(2), Err(2), "full at one element");
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), None, "empty again after drain");

        // The Vyukov ring rounds a capacity-1 request up to 2: one slot
        // cannot disambiguate "full at pos" from "empty at pos + 1" (the
        // sequence values coincide). Full/empty must still be exact at
        // the rounded capacity.
        let (tx, rx) = mpmc::<u64>(1);
        assert_eq!(rx.try_pop(), None, "empty at start");
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok(), "rounded up to two slots");
        assert_eq!(tx.try_push(3), Err(3), "full at rounded capacity");
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), None, "empty again after drain");
    }

    #[test]
    fn spsc_survives_index_wraparound_past_the_usize_window() {
        // Counters start five positions below usize::MAX and run well
        // past it; masked indexing must stay continuous across the wrap.
        let (mut tx, mut rx) = spsc_with_origin::<u64>(4, usize::MAX - 5);
        for lap in 0..16u64 {
            assert!(tx.try_push(lap).is_ok());
            assert!(tx.try_push(lap + 100).is_ok());
            assert_eq!(rx.try_pop(), Some(lap));
            assert_eq!(rx.try_pop(), Some(lap + 100));
        }
        assert_eq!(rx.try_pop(), None);
        // A full window straddling the boundary still refuses pushes.
        let (mut tx, mut rx) = spsc_with_origin::<u64>(4, usize::MAX - 1);
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert_eq!(tx.try_push(9), Err(9), "full across the boundary");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn mpmc_survives_index_wraparound_past_the_usize_window() {
        let (tx, rx) = mpmc_with_origin::<u64>(4, usize::MAX - 5);
        for lap in 0..16u64 {
            assert!(tx.try_push(lap).is_ok());
            assert_eq!(rx.try_pop(), Some(lap));
        }
        assert_eq!(rx.try_pop(), None);
        let (tx, rx) = mpmc_with_origin::<u64>(4, usize::MAX - 1);
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert_eq!(tx.try_push(9), Err(9), "full across the boundary");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn producer_drop_wakes_a_parked_consumer() {
        let (tx, mut rx) = spsc::<u64>(2);
        let consumer = std::thread::spawn(move || rx.pop_blocking());
        // Give the consumer time to exhaust its spin/yield phases and
        // reach the parked slice of the backoff. Dropping the producer
        // then closes the ring, and the bounded park timeout guarantees
        // the consumer re-checks and sees end-of-stream.
        std::thread::sleep(Duration::from_millis(2));
        drop(tx);
        assert_eq!(consumer.join().expect("consumer thread"), None);
    }

    #[test]
    fn spsc_cross_thread_preserves_order_under_backpressure() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let n = volume(10_000);
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.push_blocking(i).expect("consumer alive");
            }
            // tx drops here, closing the ring.
        });
        let mut expect = 0u64;
        while let Some(v) = rx.pop_blocking() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, n);
        producer.join().expect("producer");
    }

    #[test]
    fn spsc_drops_queued_values_on_ring_drop() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, rx) = spsc::<Counted>(4);
            tx.try_push(Counted).ok();
            tx.try_push(Counted).ok();
            drop(tx);
            drop(rx);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn mpmc_drops_queued_values_on_ring_drop_even_when_wrapped() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            // Advance a lap so the queued window sits on reused slots,
            // then leave two values in flight when the ring drops.
            let (tx, rx) = mpmc::<Counted>(4);
            for _ in 0..4 {
                tx.try_push(Counted).ok();
                drop(rx.try_pop());
            }
            tx.try_push(Counted).ok();
            tx.try_push(Counted).ok();
            drop(tx);
            drop(rx);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn mpmc_is_fifo_single_threaded() {
        let (tx, rx) = mpmc::<u64>(4);
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert!(tx.try_push(9).is_err(), "full ring refuses");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn mpmc_competing_consumers_partition_the_stream() {
        let (tx, rx) = mpmc::<u64>(16);
        let n = volume(20_000);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = rx.pop_blocking() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            tx.push_blocking(i).expect("open ring accepts");
        }
        tx.close();
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            let got = c.join().expect("consumer");
            // Each consumer's view is in stream order (per-producer FIFO).
            assert!(got.windows(2).all(|w| w[0] < w[1]));
            all.extend(got);
        }
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<u64>>());
    }

    #[test]
    fn mpmc_close_refuses_new_pushes() {
        let (tx, rx) = mpmc::<u64>(4);
        assert!(tx.try_push(1).is_ok());
        tx.close();
        assert_eq!(tx.try_push(2), Err(2));
        assert_eq!(rx.pop_blocking(), Some(1));
        assert_eq!(rx.pop_blocking(), None);
    }
}
