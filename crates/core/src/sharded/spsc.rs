//! Hand-rolled bounded lock-free rings for the sharded runtime.
//!
//! Two shapes, both std-only (no `crossbeam`, no locks — this file is
//! tagged as a sharded-runtime hot path in `xtask.allow`, so `cargo
//! xtask lint` rule 7 rejects any `Mutex`/`RwLock` here):
//!
//! - [`spsc`]: a single-producer single-consumer ring with plain
//!   acquire/release head/tail counters. One of these backs every
//!   `(router worker → joiner worker)` channel, which is exactly how the
//!   runtime preserves the pairwise-FIFO contract (Definition 8): a
//!   channel *is* a ring, and a ring cannot reorder.
//! - [`mpmc`]: a Vyukov-style slot-sequence ring for the competing
//!   consumer ingest edge (one pipeline feeder, N router workers).
//!
//! Blocking is adaptive and lock-free: spin a few dozen iterations, then
//! yield, then `park_timeout` in short slices. No waker handshake is
//! needed — the timeout bounds wakeup latency to ~100µs, and under load
//! the rings are never empty long enough to park at all.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Pad to a cache line so the producer and consumer counters never
/// false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Spins before yielding in a blocking wait.
const SPIN_LIMIT: u32 = 64;
/// Yields before parking in a blocking wait.
const YIELD_LIMIT: u32 = 16;
/// Park slice once spinning and yielding have not produced progress.
const PARK_SLICE: Duration = Duration::from_micros(100);

/// One step of the adaptive wait: spin, then yield, then park briefly.
fn backoff(attempt: &mut u32) {
    *attempt = attempt.saturating_add(1);
    if *attempt <= SPIN_LIMIT {
        std::hint::spin_loop();
    } else if *attempt <= SPIN_LIMIT + YIELD_LIMIT {
        std::thread::yield_now();
    } else {
        std::thread::park_timeout(PARK_SLICE);
    }
}

// ---------------------------------------------------------------------
// SPSC
// ---------------------------------------------------------------------

struct SpscShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Consumer position (next slot to read).
    head: CachePadded<AtomicUsize>,
    /// Producer position (next slot to write).
    tail: CachePadded<AtomicUsize>,
    closed: AtomicBool,
}

// Safety: the ring hands out exactly one Producer and one Consumer; all
// slot access is fenced by the acquire/release head/tail protocol below.
unsafe impl<T: Send> Send for SpscShared<T> {}
unsafe impl<T: Send> Sync for SpscShared<T> {}

impl<T> Drop for SpscShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point; drop whatever is still queued.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.buf[i % self.cap];
            // Safety: slots in [head, tail) were written and never read.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// Producer half of an [`spsc`] ring.
pub struct SpscProducer<T> {
    shared: Arc<SpscShared<T>>,
}

/// Consumer half of an [`spsc`] ring.
pub struct SpscConsumer<T> {
    shared: Arc<SpscShared<T>>,
}

/// A bounded single-producer single-consumer ring of `capacity` slots
/// (minimum 2). FIFO per construction; no allocation after creation.
pub fn spsc<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = capacity.max(2);
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(SpscShared {
        buf,
        cap,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (SpscProducer { shared: Arc::clone(&shared) }, SpscConsumer { shared })
}

impl<T> SpscProducer<T> {
    /// Try to enqueue; gives the value back when the ring is full or the
    /// consumer side is gone.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let s = &*self.shared;
        if Arc::strong_count(&self.shared) == 1 {
            // Consumer dropped; nothing will ever drain the ring.
            return Err(value);
        }
        let tail = s.tail.0.load(Ordering::Relaxed);
        let head = s.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == s.cap {
            return Err(value);
        }
        let slot = &s.buf[tail % s.cap];
        // Safety: slot at `tail` is outside [head, tail), i.e. empty, and
        // only this (single) producer writes slots.
        unsafe { (*slot.get()).write(value) };
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueue, waiting for space (spin → yield → park slices). Gives the
    /// value back only if the consumer side disappeared.
    pub fn push_blocking(&mut self, mut value: T) -> Result<(), T> {
        let mut attempt = 0;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(v) if Arc::strong_count(&self.shared) == 1 => return Err(v),
                Err(v) => value = v,
            }
            backoff(&mut attempt);
        }
    }

    /// Close the ring: the consumer drains what is queued, then sees
    /// end-of-stream. Idempotent.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.0.load(Ordering::Relaxed).wrapping_sub(s.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscProducer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> SpscConsumer<T> {
    /// Dequeue the next value, if any.
    pub fn try_pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed);
        let tail = s.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &s.buf[head % s.cap];
        // Safety: slot at `head` is inside [head, tail), i.e. written and
        // unread, and only this (single) consumer reads slots.
        let value = unsafe { (*slot.get()).assume_init_read() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Dequeue, waiting for a value. `None` means the producer closed the
    /// ring (or dropped) *and* everything queued has been drained — the
    /// two-phase-shutdown end-of-stream signal.
    pub fn pop_blocking(&mut self) -> Option<T> {
        let mut attempt = 0;
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.is_closed() || Arc::strong_count(&self.shared) == 1 {
                // Re-check after observing closed: a final frame may have
                // been pushed just before the close flag.
                return self.try_pop();
            }
            backoff(&mut attempt);
        }
    }

    /// Whether the producer has closed the ring. Queued frames may still
    /// be pending; end-of-stream is closed *and* empty.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.0.load(Ordering::Relaxed).wrapping_sub(s.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// MPMC (Vyukov slot-sequence ring)
// ---------------------------------------------------------------------

struct McSlot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct MpmcShared<T> {
    buf: Box<[McSlot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
    closed: AtomicBool,
}

// Safety: slot hand-off is fenced by the per-slot sequence protocol.
unsafe impl<T: Send> Send for MpmcShared<T> {}
unsafe impl<T: Send> Sync for MpmcShared<T> {}

impl<T> Drop for MpmcShared<T> {
    fn drop(&mut self) {
        // Sole owner; drop slots still holding a written, unread value
        // (their sequence reads pos + 1).
        for (i, slot) in self.buf.iter().enumerate() {
            let seq = slot.seq.load(Ordering::Relaxed);
            let pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            // A slot at index i is full when its seq is one past some
            // enqueue position p with p & mask == i and p >= dequeue_pos.
            if seq == i.wrapping_add(1) && i >= pos & self.mask {
                // Conservative: only the simple non-wrapped case matters
                // in practice (shutdown drains rings before drop).
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

/// Producer handle for an [`mpmc`] ring (cloneable).
pub struct MpmcProducer<T> {
    shared: Arc<MpmcShared<T>>,
}

impl<T> Clone for MpmcProducer<T> {
    fn clone(&self) -> Self {
        MpmcProducer { shared: Arc::clone(&self.shared) }
    }
}

/// Consumer handle for an [`mpmc`] ring (cloneable — consumers compete).
pub struct MpmcConsumer<T> {
    shared: Arc<MpmcShared<T>>,
}

impl<T> Clone for MpmcConsumer<T> {
    fn clone(&self) -> Self {
        MpmcConsumer { shared: Arc::clone(&self.shared) }
    }
}

/// A bounded multi-producer multi-consumer ring. Capacity is rounded up
/// to a power of two (minimum 2). Per-producer FIFO holds; competing
/// consumers interleave.
pub fn mpmc<T>(capacity: usize) -> (MpmcProducer<T>, MpmcConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[McSlot<T>]> = (0..cap)
        .map(|i| McSlot { seq: AtomicUsize::new(i), value: UnsafeCell::new(MaybeUninit::uninit()) })
        .collect();
    let shared = Arc::new(MpmcShared {
        buf,
        mask: cap - 1,
        enqueue_pos: CachePadded(AtomicUsize::new(0)),
        dequeue_pos: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (MpmcProducer { shared: Arc::clone(&shared) }, MpmcConsumer { shared })
}

impl<T> MpmcProducer<T> {
    /// Try to enqueue; gives the value back when the ring is full or
    /// closed.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let s = &*self.shared;
        if s.closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let mut pos = s.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &s.buf[pos & s.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match s.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS gives this producer
                        // exclusive write access to the slot.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < pos {
                return Err(value); // full
            } else {
                pos = s.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueue, waiting for space. Gives the value back only when the
    /// ring has been closed.
    pub fn push_blocking(&self, mut value: T) -> Result<(), T> {
        let mut attempt = 0;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(v) if self.shared.closed.load(Ordering::Acquire) => return Err(v),
                Err(v) => value = v,
            }
            backoff(&mut attempt);
        }
    }

    /// Close the ring: consumers drain what is queued, then see
    /// end-of-stream; further pushes are refused. Idempotent.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.enqueue_pos.0.load(Ordering::Relaxed).wrapping_sub(s.dequeue_pos.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> MpmcConsumer<T> {
    /// Dequeue the next value, if any.
    pub fn try_pop(&self) -> Option<T> {
        let s = &*self.shared;
        let mut pos = s.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &s.buf[pos & s.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if seq == expected {
                match s.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS gives this consumer
                        // exclusive read access to the slot.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos.wrapping_add(s.mask).wrapping_add(1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < expected {
                return None; // empty
            } else {
                pos = s.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue, waiting for a value. `None` means the ring was closed and
    /// fully drained.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut attempt = 0;
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                return self.try_pop();
            }
            backoff(&mut attempt);
        }
    }

    /// Whether the ring has been closed. Queued frames may still be
    /// pending; end-of-stream is closed *and* empty.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Frames currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.enqueue_pos.0.load(Ordering::Relaxed).wrapping_sub(s.dequeue_pos.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_is_fifo_single_threaded() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(3).is_ok());
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn spsc_refuses_when_full_and_recovers() {
        let (mut tx, mut rx) = spsc::<u64>(2);
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert_eq!(tx.try_push(3), Err(3));
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(3).is_ok());
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn spsc_close_signals_end_of_stream_after_drain() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        assert!(tx.try_push(7).is_ok());
        tx.close();
        assert!(rx.is_closed());
        assert_eq!(rx.pop_blocking(), Some(7));
        assert_eq!(rx.pop_blocking(), None);
    }

    #[test]
    fn spsc_cross_thread_preserves_order_under_backpressure() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.push_blocking(i).expect("consumer alive");
            }
            // tx drops here, closing the ring.
        });
        let mut expect = 0u64;
        while let Some(v) = rx.pop_blocking() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, n);
        producer.join().expect("producer");
    }

    #[test]
    fn spsc_drops_queued_values_on_ring_drop() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, rx) = spsc::<Counted>(4);
            tx.try_push(Counted).ok();
            tx.try_push(Counted).ok();
            drop(tx);
            drop(rx);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn mpmc_is_fifo_single_threaded() {
        let (tx, rx) = mpmc::<u64>(4);
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert!(tx.try_push(9).is_err(), "full ring refuses");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn mpmc_competing_consumers_partition_the_stream() {
        let (tx, rx) = mpmc::<u64>(16);
        let n = 20_000u64;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = rx.pop_blocking() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            tx.push_blocking(i).expect("open ring accepts");
        }
        tx.close();
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            let got = c.join().expect("consumer");
            // Each consumer's view is in stream order (per-producer FIFO).
            assert!(got.windows(2).all(|w| w[0] < w[1]));
            all.extend(got);
        }
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<u64>>());
    }

    #[test]
    fn mpmc_close_refuses_new_pushes() {
        let (tx, rx) = mpmc::<u64>(4);
        assert!(tx.try_push(1).is_ok());
        tx.close();
        assert_eq!(tx.try_push(2), Err(2));
        assert_eq!(rx.pop_blocking(), Some(1));
        assert_eq!(rx.pop_blocking(), None);
    }
}
