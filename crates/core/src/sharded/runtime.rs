//! The sharded worker runtime: per-unit threads over lock-free rings.
//!
//! Topology (one process, one thread per shard):
//!
//! ```text
//!            mpmc ingest ring            spsc ring per (router, unit)
//! feeder ──────────────────────► router workers ─────────────────────► joiner workers
//!        (competing consumers)   route + punctuate          ordering + store/join
//! ```
//!
//! Frames cross rings as in-memory [`BatchMessage`] values — no
//! encode/decode on the hot path, and a batch's tuples are refcounted so
//! the hand-off never copies payloads. Observability mirrors the broker
//! pipeline series-for-series: each unit's rings register the same
//! `bistream_queue_*` series under `queue="unit.N"`, sampled tuples get
//! the same enqueue/dequeue trace spans, and the auditor sees the same
//! per-queue conservation events, so the watchdog, the SLO engine and the
//! queueing-model analyzer grade either backend unchanged.

use crate::adaptive::AdaptiveShared;
use crate::exec::{PipelineConfig, INGEST_QUEUE};
use crate::joiner::{JoinerCore, JoinerStats};
use crate::layout::{JoinerId, Layout};
use crate::router::{RoutedBatch, RouterCore};
use crate::sharded::spsc::{mpmc, spsc, MpmcConsumer, MpmcProducer, SpscConsumer, SpscProducer};
use crate::stats::EngineStats;
use bistream_types::audit::Auditor;
use bistream_types::batch::BatchMessage;
use bistream_types::error::{Error, Result};
use bistream_types::hash::FxHashMap;
use bistream_types::journal::EventKind;
use bistream_types::metric_names as names;
use bistream_types::metrics::{Counter, Gauge};
use bistream_types::punct::RouterId;
use bistream_types::registry::Observability;
use bistream_types::time::{Clock, WallClock};
use bistream_types::trace::{HopKind, Tracer};
use bistream_types::tuple::{JoinResult, Tuple};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Burst cap per ring visit in the joiner loop, so one busy router cannot
/// starve the other rings of the same unit.
const DRAIN_BURST: usize = 64;

/// Park slice while idle or stalled (bounds wakeup latency without any
/// waker handshake).
const IDLE_PARK: Duration = Duration::from_micros(100);

/// Pin the calling worker to a core — the documented seam for core
/// affinity. The workspace deliberately vendors no affinity syscall crate
/// (`libc`/`core_affinity`), so this is a best-effort no-op: the OS
/// scheduler keeps one ready thread per core anyway, and the thread name
/// (`shard-router-N` / `shard-unit-N`) makes per-shard attribution work
/// in profilers. Swap in a real affinity call here when the dependency
/// becomes available.
fn pin_to_core(_shard: usize) {}

/// Per-unit-queue observability: the same `bistream_queue_*` series the
/// broker registers, kept current by ring pushes/pops, plus the auditor's
/// per-queue conservation events.
struct RingObs {
    name: String,
    published: Arc<Counter>,
    delivered: Arc<Counter>,
    depth: Arc<Gauge>,
    depth_max: Arc<Gauge>,
    blocks: Arc<Counter>,
    stall_ms: Arc<Counter>,
    auditor: Option<Auditor>,
}

impl RingObs {
    fn register(obs: &Observability, auditor: Option<Auditor>, name: String) -> Arc<RingObs> {
        let labels: &[(&str, &str)] = &[("queue", &name)];
        let reg = &obs.registry;
        Arc::new(RingObs {
            published: reg.counter(names::QUEUE_PUBLISHED_TOTAL, labels),
            delivered: reg.counter(names::QUEUE_DELIVERED_TOTAL, labels),
            depth: reg.gauge(names::QUEUE_DEPTH, labels),
            depth_max: reg.gauge(names::QUEUE_DEPTH_MAX, labels),
            blocks: reg.counter(names::QUEUE_BACKPRESSURE_BLOCKS_TOTAL, labels),
            stall_ms: reg.counter(names::QUEUE_STALL_MS_TOTAL, labels),
            auditor,
            name,
        })
    }

    /// Account one frame entering a ring of this queue.
    fn on_push(&self) {
        self.published.inc();
        self.depth.add(1);
        let d = self.depth.get();
        if d > self.depth_max.get() {
            self.depth_max.set(d);
        }
        if let Some(a) = &self.auditor {
            a.queue_enqueue(&self.name);
        }
    }

    /// Account one frame leaving a ring of this queue.
    fn on_pop(&self) {
        self.depth.sub(1);
        self.delivered.inc();
        if let Some(a) = &self.auditor {
            a.queue_dequeue(&self.name);
        }
    }
}

/// Everything a worker loop shares with the facade: counters, clock,
/// tracer — cloned `Arc`s, no locks.
#[derive(Clone)]
struct WorkerCtx {
    stats: Arc<EngineStats>,
    clock: Arc<WallClock>,
    tracer: Tracer,
}

/// The lock-free sharded multi-core backend behind
/// [`Pipeline`](crate::exec::Pipeline) (select it with
/// [`Backend::Sharded`](crate::exec::Backend)). See the
/// [module docs](crate::sharded) for the topology and guarantees.
pub struct ShardedRuntime {
    ingest: MpmcProducer<Tuple>,
    ingest_obs: Arc<RingObs>,
    router_handles: Vec<JoinHandle<Result<()>>>,
    joiner_handles: Vec<JoinHandle<Result<(JoinerStats, Vec<JoinResult>)>>>,
    /// Stall injection flags keyed by queue name (`unit.N`), flipped by
    /// [`ShardedRuntime::set_queue_stalled`] and cleared at shutdown.
    stalls: FxHashMap<String, Arc<AtomicBool>>,
}

impl ShardedRuntime {
    /// Spawn one worker thread per router and per joiner unit, wired with
    /// bounded rings, and return the running backend.
    pub(crate) fn launch(
        config: &PipelineConfig,
        layout: &Layout,
        obs: &Observability,
        auditor: Option<Auditor>,
        stats: Arc<EngineStats>,
        clock: Arc<WallClock>,
        capture: bool,
        adaptive: Option<Arc<AdaptiveShared>>,
    ) -> Result<ShardedRuntime> {
        let engine = &config.engine;
        let routers = config.routers.max(1);
        // One-time launch caveat: core pinning is a documented no-op until
        // an affinity syscall crate is vendored, so "sharded" here means
        // one named thread per shard under the OS scheduler (see
        // `pin_to_core`). Surfaced in the journal so operators comparing
        // backend throughput see it without reading the source.
        obs.journal.record(
            clock.now(),
            EventKind::ConfigWarning {
                topic: "pin_to_core".to_string(),
                detail: "sharded backend: pin_to_core is a best-effort no-op (no affinity \
                         syscall crate vendored); worker threads are named but not pinned"
                    .to_string(),
            },
        );
        let seq = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let router_ids: Vec<(RouterId, u64)> = (0..routers).map(|i| (i as RouterId, 0)).collect();
        let ctx = WorkerCtx {
            stats,
            clock,
            tracer: obs.tracer.clone(),
        };

        // Ingest edge: one competing-consumer ring shared by all routers,
        // registered under the broker's ingest-queue name so dashboards
        // and the perf analyzer see one ingest series either way.
        let (ingest_tx, ingest_rx) = mpmc::<Tuple>(config.ingest_capacity);
        let ingest_obs = RingObs::register(obs, auditor.clone(), INGEST_QUEUE.to_string());

        // Per-unit plumbing: a stall flag, a queue-series bundle, and one
        // SPSC ring per router (pairwise FIFO by construction).
        let mut stalls = FxHashMap::default();
        let mut unit_obs: FxHashMap<JoinerId, Arc<RingObs>> = FxHashMap::default();
        let mut unit_rings: FxHashMap<JoinerId, Vec<SpscConsumer<BatchMessage>>> =
            FxHashMap::default();
        let mut producers_per_router: Vec<FxHashMap<JoinerId, SpscProducer<BatchMessage>>> =
            (0..routers).map(|_| FxHashMap::default()).collect();
        for (_, id) in layout.all_units() {
            let qname = format!("unit.{}", id.0);
            stalls.insert(qname.clone(), Arc::new(AtomicBool::new(false)));
            unit_obs.insert(id, RingObs::register(obs, auditor.clone(), qname));
            let mut consumers = Vec::with_capacity(routers);
            for producer_map in producers_per_router.iter_mut() {
                let (tx, rx) = spsc::<BatchMessage>(config.unit_capacity.max(2));
                producer_map.insert(id, tx);
                consumers.push(rx);
            }
            unit_rings.insert(id, consumers);
        }

        // Joiner workers.
        let mut joiner_handles = Vec::new();
        for (shard, (side, id)) in layout.all_units().enumerate() {
            let mut joiner = JoinerCore::new(
                id,
                side,
                engine.predicate.clone(),
                engine.window,
                engine.archive_period_ms,
                engine.ordering,
                &router_ids,
                config.cost,
            );
            joiner.attach_obs(obs);
            joiner.set_batch_size(engine.batch_size);
            // Per-shard epoch-based expiry: at most one chain walk per
            // archive period instead of one per store/probe run.
            joiner.set_epoch_expiry(true);
            if let Some(a) = &auditor {
                joiner.set_auditor(a.clone());
            }
            let worker = JoinerWorker {
                joiner,
                rings: unit_rings.remove(&id).expect("ring set per unit"),
                obs: Arc::clone(&unit_obs[&id]),
                stall: Arc::clone(&stalls[&format!("unit.{}", id.0)]),
                ctx: ctx.clone(),
                capture,
            };
            let handle = std::thread::Builder::new()
                .name(format!("shard-unit-{}", id.0))
                .spawn(move || {
                    pin_to_core(shard);
                    worker.run()
                })
                .map_err(|e| Error::Config(format!("spawn joiner worker: {e}")))?;
            joiner_handles.push(handle);
        }

        // Router workers.
        let joiner_shards = joiner_handles.len();
        let mut router_handles = Vec::new();
        for (shard, producer_map) in producers_per_router.into_iter().enumerate() {
            let mut core = RouterCore::new(
                shard as RouterId,
                engine.routing,
                engine.predicate.clone(),
                engine.seed,
                Arc::clone(&seq),
            );
            core.attach_registry(&obs.registry);
            core.attach_tracer(obs.tracer.clone());
            core.set_batch_size(engine.batch_size);
            if let Some(a) = &auditor {
                core.set_auditor(a.clone());
            }
            if let Some(sh) = &adaptive {
                core.attach_adaptive(sh.handle(shard as RouterId));
            }
            let worker = RouterWorker {
                core,
                layout: layout.clone(),
                ingest: ingest_rx.clone(),
                ingest_obs: Arc::clone(&ingest_obs),
                producers: producer_map,
                unit_obs: unit_obs.clone(),
                ctx: ctx.clone(),
                punct_interval: Duration::from_millis(engine.punctuation_interval_ms),
            };
            let handle = std::thread::Builder::new()
                .name(format!("shard-router-{shard}"))
                .spawn(move || {
                    pin_to_core(joiner_shards + shard);
                    worker.run()
                })
                .map_err(|e| Error::Config(format!("spawn router worker: {e}")))?;
            router_handles.push(handle);
        }

        Ok(ShardedRuntime { ingest: ingest_tx, ingest_obs, router_handles, joiner_handles, stalls })
    }

    /// Feed one tuple (blocking when the ingest ring is full). The tuple
    /// is moved into the ring as a value — no serialisation.
    pub fn ingest(&self, tuple: &Tuple) -> Result<()> {
        let owned = match self.ingest.try_push(tuple.clone()) {
            Ok(()) => {
                self.ingest_obs.on_push();
                return Ok(());
            }
            Err(t) => {
                self.ingest_obs.blocks.inc();
                t
            }
        };
        self.ingest.push_blocking(owned).map_err(|_| Error::Closed)?;
        self.ingest_obs.on_push();
        Ok(())
    }

    /// Stall or resume delivery out of one unit's rings (queue name
    /// `unit.N`) — the sharded analogue of parking a broker queue: frames
    /// pile up (visible in the depth gauges the watchdog reads) while the
    /// stall window is open, and drain when it heals.
    pub fn set_queue_stalled(&self, queue: &str, on: bool) -> Result<()> {
        let flag = self
            .stalls
            .get(queue)
            .ok_or_else(|| Error::Broker(format!("no such queue `{queue}`")))?;
        flag.store(on, Ordering::Release);
        Ok(())
    }

    /// Two-phase shutdown, draining in punctuation order:
    ///
    /// 1. heal stalls and close the ingest ring — router workers drain
    ///    what is queued, emit a final punctuation *behind* all data, and
    ///    close their unit rings;
    /// 2. joiner workers drain every ring to end-of-stream (per-channel
    ///    FIFO puts each final punctuation last) and terminally flush.
    ///
    /// Returns per-joiner stats and captured results, both in layout unit
    /// order.
    pub(crate) fn shutdown(self) -> Result<(Vec<JoinerStats>, Vec<JoinResult>)> {
        for flag in self.stalls.values() {
            flag.store(false, Ordering::Release);
        }
        self.ingest.close();
        for h in self.router_handles {
            h.join().map_err(|_| Error::Closed)??;
        }
        let mut joiners = Vec::new();
        let mut captured = Vec::new();
        for h in self.joiner_handles {
            let (stats, mut results) = h.join().map_err(|_| Error::Closed)??;
            joiners.push(stats);
            captured.append(&mut results);
        }
        Ok((joiners, captured))
    }
}

/// One router shard: competes on the ingest ring, routes and batches, and
/// owns the producer half of one SPSC ring per joiner unit.
struct RouterWorker {
    core: RouterCore,
    layout: Layout,
    ingest: MpmcConsumer<Tuple>,
    ingest_obs: Arc<RingObs>,
    producers: FxHashMap<JoinerId, SpscProducer<BatchMessage>>,
    unit_obs: FxHashMap<JoinerId, Arc<RingObs>>,
    ctx: WorkerCtx,
    punct_interval: Duration,
}

impl RouterWorker {
    fn run(mut self) -> Result<()> {
        let mut frames: Vec<RoutedBatch> = Vec::new();
        let mut last_punct = Instant::now();
        let mut idle = 0u32;
        loop {
            match self.ingest.try_pop() {
                Some(tuple) => {
                    idle = 0;
                    self.ingest_obs.on_pop();
                    self.ctx.stats.ingested.inc();
                    self.core.route_batched(&tuple, &self.layout, &[], &mut frames)?;
                    self.push_frames(&mut frames)?;
                }
                None if self.ingest.is_closed() && self.ingest.is_empty() => break,
                None => idle_wait(&mut idle),
            }
            if last_punct.elapsed() >= self.punct_interval {
                self.core.punctuate_batched(&self.layout, &mut frames);
                self.push_frames(&mut frames)?;
                last_punct = Instant::now();
            }
        }
        // Final punctuation behind everything this router ever sent; the
        // rings close when the producers drop, which is the end-of-stream
        // signal the joiner workers drain to.
        self.core.punctuate_batched(&self.layout, &mut frames);
        self.push_frames(&mut frames)?;
        Ok(())
    }

    /// Move flushed frames into their unit rings: span/auditor/series
    /// accounting mirrors the broker's publish path, but the frame itself
    /// is an in-memory value hand-off.
    fn push_frames(&mut self, frames: &mut Vec<RoutedBatch>) -> Result<()> {
        for f in frames.drain(..) {
            let obs = &self.unit_obs[&f.dest];
            match &f.msg {
                BatchMessage::Batch(b) => {
                    self.ctx.stats.copies.add(b.len() as u64);
                    let now = self.ctx.clock.now();
                    for e in b.entries() {
                        if self.ctx.tracer.sampled(e.seq) {
                            self.ctx.tracer.span(e.seq, HopKind::Enqueue, &obs.name, now, now);
                        }
                    }
                }
                BatchMessage::Punct(_) => self.ctx.stats.punctuations.inc(),
            }
            let tx = self.producers.get_mut(&f.dest).expect("ring per active unit");
            let msg = match tx.try_push(f.msg) {
                Ok(()) => {
                    obs.on_push();
                    continue;
                }
                Err(m) => m,
            };
            obs.blocks.inc();
            tx.push_blocking(msg).map_err(|_| Error::Closed)?;
            obs.on_push();
        }
        Ok(())
    }
}

/// One joiner shard: drains its per-router rings (bounded bursts keep the
/// scan fair), runs the ordering protocol and the store/join branches,
/// and honours injected stall windows.
struct JoinerWorker {
    joiner: JoinerCore,
    rings: Vec<SpscConsumer<BatchMessage>>,
    obs: Arc<RingObs>,
    // protocol: field stall acquire-load / release-store
    stall: Arc<AtomicBool>,
    ctx: WorkerCtx,
    capture: bool,
}

impl JoinerWorker {
    fn run(mut self) -> Result<(JoinerStats, Vec<JoinResult>)> {
        let mut captured: Vec<JoinResult> = Vec::new();
        let per_joiner_latency = self.joiner.latency_histogram();
        let mut idle = 0u32;
        loop {
            if self.stall.load(Ordering::Acquire) {
                let held = Instant::now();
                let mut waited = 0u32;
                while self.stall.load(Ordering::Acquire) {
                    idle_wait(&mut waited);
                }
                self.obs.stall_ms.add(held.elapsed().as_millis() as u64);
                continue;
            }
            let mut progressed = false;
            for r in 0..self.rings.len() {
                for _ in 0..DRAIN_BURST {
                    let Some(msg) = self.rings[r].try_pop() else { break };
                    progressed = true;
                    self.obs.on_pop();
                    let now = self.ctx.clock.now();
                    if let BatchMessage::Batch(b) = &msg {
                        for e in b.entries() {
                            if self.ctx.tracer.sampled(e.seq) {
                                self.ctx.tracer.span(
                                    e.seq,
                                    HopKind::Dequeue,
                                    &self.obs.name,
                                    now,
                                    now,
                                );
                            }
                        }
                    }
                    let stats = &self.ctx.stats;
                    let clock = &self.ctx.clock;
                    let capture = self.capture;
                    let captured = &mut captured;
                    self.joiner.set_now(now);
                    self.joiner.handle_batch(msg, &mut |result: JoinResult| {
                        stats.results.inc();
                        let latency = clock.now().saturating_sub(result.ts);
                        stats.latency_ms.record(latency);
                        if let Some(h) = &per_joiner_latency {
                            h.record(latency);
                        }
                        if capture {
                            captured.push(result);
                        }
                    })?;
                }
            }
            if progressed {
                idle = 0;
            } else if self.rings.iter().all(|r| r.is_closed() && r.is_empty()) {
                break;
            } else {
                idle_wait(&mut idle);
            }
        }
        // End-of-stream on every ring: final punctuations have been
        // processed, so the terminal flush drains the reorder buffers.
        let stats = &self.ctx.stats;
        let clock = &self.ctx.clock;
        let capture = self.capture;
        let results = &mut captured;
        self.joiner.set_now(clock.now());
        self.joiner.flush(&mut |result: JoinResult| {
            stats.results.inc();
            let latency = clock.now().saturating_sub(result.ts);
            stats.latency_ms.record(latency);
            if let Some(h) = &per_joiner_latency {
                h.record(latency);
            }
            if capture {
                results.push(result);
            }
        })?;
        Ok((self.joiner.stats(), captured))
    }
}

/// Adaptive idle wait: spin briefly, then yield, then park in short
/// slices — lock-free, bounded wakeup latency.
fn idle_wait(attempt: &mut u32) {
    *attempt = attempt.saturating_add(1);
    if *attempt <= 64 {
        std::hint::spin_loop();
    } else if *attempt <= 80 {
        std::thread::yield_now();
    } else {
        std::thread::park_timeout(IDLE_PARK);
    }
}
