//! The lock-free sharded multi-core backend.
//!
//! Where the broker pipeline (`crate::exec` with
//! [`Backend::Broker`](crate::exec::Backend)) funnels every frame through
//! mutex-guarded AMQP-model queues with byte-level encode/decode at each
//! hop, this backend gives every router and joiner unit its own worker
//! thread and connects them with hand-rolled bounded rings
//! ([`spsc`](spsc::spsc) per router→joiner channel, a Vyukov-style
//! [`mpmc`](spsc::mpmc) ring on the ingest edge). Frames move as in-memory
//! [`BatchMessage`](bistream_types::batch::BatchMessage) values — tuple
//! payloads inside a batch are refcounted, so a frame hand-off is a
//! pointer move, never a serialisation pass.
//!
//! The [`DataPlane`](crate::delivery::DataPlane) contract holds by
//! construction: each `(router, joiner)` pair owns exactly one SPSC ring,
//! so pairwise FIFO (Definition 8) and punctuation fencing are structural
//! properties, and the two-phase shutdown (close ingest → routers flush a
//! final punctuation and close their rings → joiners drain to
//! end-of-stream and terminally flush) drains in punctuation order.

pub mod runtime;
pub mod spsc;

pub use runtime::ShardedRuntime;
