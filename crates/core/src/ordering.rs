//! The joiner-side reorder buffer: the order-consistent protocol
//! (Definition 7) built on pairwise-FIFO channels (Definition 8).
//!
//! Every router stamps its tuples with a dense per-router counter and
//! periodically punctuates with the highest counter assigned so far.
//! Because each router→joiner channel is FIFO, receiving
//! `Punctuation { router, seq }` proves that every copy from `router` with
//! a counter ≤ `seq` destined for this joiner has already arrived.
//!
//! The buffer holds data messages in a min-heap keyed by
//! `(seq, router_id)` and releases, in that order, every message whose
//! counter is ≤ the **watermark** — the minimum punctuation frontier over
//! all registered routers. Any copy still in flight from router `r'` has a
//! counter `> frontier[r'] ≥ watermark`, so nothing smaller than a
//! released key can arrive later; and since every joiner sorts by the same
//! key, all joiners process their subsequences of one global order `Z` —
//! exactly Definition 7. That consistency is what eliminates the
//! duplicate-result and missed-result races (thesis Fig. 8 c/d).

use bistream_types::hash::FxHashMap;
use bistream_types::punct::{Purpose, RouterId, SeqNo, StreamMessage};
use bistream_types::tuple::Tuple;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A data message waiting for the watermark.
#[derive(Debug, Clone, PartialEq)]
struct Pending {
    seq: SeqNo,
    router: RouterId,
    purpose: Purpose,
    tuple: Tuple,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.seq, self.router).cmp(&(other.seq, other.router))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A released, ready-to-process tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Released {
    /// Originating router.
    pub router: RouterId,
    /// The tuple's global sequence component.
    pub seq: SeqNo,
    /// Store or join branch.
    pub purpose: Purpose,
    /// The tuple.
    pub tuple: Tuple,
}

/// Observability counters for the buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ReorderStats {
    /// Messages buffered over the lifetime.
    pub buffered: u64,
    /// Messages released.
    pub released: u64,
    /// High-water mark of the buffer depth.
    pub max_depth: usize,
    /// Punctuations observed.
    pub punctuations: u64,
    /// Duplicate deliveries discarded (sequence at or below the router's
    /// frontier — only possible under at-least-once redelivery).
    pub duplicates_dropped: u64,
}

/// The reorder buffer of one joiner.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    frontiers: FxHashMap<RouterId, SeqNo>,
    heap: BinaryHeap<Reverse<Pending>>,
    stats: ReorderStats,
    /// Test-only fault hook: while set, punctuations no longer advance
    /// frontiers, so the watermark freezes and buffered data accumulates —
    /// the exact signature the stall watchdog must detect.
    frozen: bool,
}

impl ReorderBuffer {
    /// An empty buffer with no routers registered.
    pub fn new() -> ReorderBuffer {
        ReorderBuffer::default()
    }

    /// Register a router with its current frontier. A joiner created
    /// mid-run (scale-out) registers every live router at the router's
    /// *current* counter: copies it will receive all carry later counters.
    pub fn register_router(&mut self, router: RouterId, frontier: SeqNo) {
        self.frontiers.entry(router).or_insert(frontier);
    }

    /// Deregister a retired router so its (now frozen) frontier stops
    /// holding the watermark back. Only sound after the router's final
    /// punctuation has been processed: by then every message it ever sent
    /// to this joiner is either released or releasable, so removing its
    /// frontier cannot un-order anything. Releases whatever the removal
    /// unblocks.
    pub fn deregister_router(&mut self, router: RouterId, out: &mut Vec<Released>) {
        self.frontiers.remove(&router);
        self.release(out);
    }

    /// Number of messages currently buffered.
    pub fn depth(&self) -> usize {
        self.heap.len()
    }

    /// Counters.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// The current watermark: the minimum frontier over registered
    /// routers (`None` until at least one router is registered).
    pub fn watermark(&self) -> Option<SeqNo> {
        self.frontiers.values().copied().min()
    }

    /// The maximum frontier over registered routers. Paired with
    /// [`ReorderBuffer::watermark`] this gives the punctuation-frontier
    /// lag: how far the slowest router trails the fastest, i.e. how much
    /// release progress is being held back.
    pub fn max_frontier(&self) -> Option<SeqNo> {
        self.frontiers.values().copied().max()
    }

    /// `max_frontier - watermark` (0 with fewer than two routers).
    pub fn frontier_lag(&self) -> SeqNo {
        match (self.max_frontier(), self.watermark()) {
            (Some(hi), Some(lo)) => hi - lo,
            _ => 0,
        }
    }

    /// Offer one incoming message; append any now-releasable tuples to
    /// `out` in global `(seq, router)` order.
    pub fn offer(&mut self, msg: StreamMessage, out: &mut Vec<Released>) {
        match msg {
            StreamMessage::Data { router, seq, purpose, tuple } => {
                // Auto-register unknown routers at frontier 0: their
                // punctuations will lift the watermark when they arrive.
                let frontier = *self.frontiers.entry(router).or_insert(0);
                // A sequence at or below its router's frontier has already
                // been released (or would violate the global order): this
                // is a redelivered duplicate — at-least-once transports
                // (broker manual-ack requeues) produce these — and
                // dropping it here is what keeps results exactly-once.
                if seq <= frontier {
                    self.stats.duplicates_dropped += 1;
                    return;
                }
                self.heap.push(Reverse(Pending { seq, router, purpose, tuple }));
                self.stats.buffered += 1;
                self.stats.max_depth = self.stats.max_depth.max(self.heap.len());
            }
            StreamMessage::Punct(p) => {
                let f = self.frontiers.entry(p.router).or_insert(0);
                if !self.frozen {
                    *f = (*f).max(p.seq);
                }
                self.stats.punctuations += 1;
            }
        }
        self.release(out);
    }

    /// Terminal flush: release *everything* buffered, in global order.
    ///
    /// Only sound when no further messages can arrive (the unit's channel
    /// has been closed and drained — shutdown, or unit retirement): with
    /// the complete residue in hand, sorting it extends the global order
    /// consistently at every joiner.
    pub fn flush(&mut self, out: &mut Vec<Released>) {
        while let Some(Reverse(p)) = self.heap.pop() {
            self.stats.released += 1;
            out.push(Released { router: p.router, seq: p.seq, purpose: p.purpose, tuple: p.tuple });
        }
    }

    /// Split a released sequence into maximal same-purpose runs of at most
    /// `max_len` entries, preserving the global release order.
    ///
    /// This is the joiner's batching hook: a run of consecutive store (or
    /// join) releases becomes one `insert_batch` (or `probe_batch`) call
    /// instead of per-tuple calls. `max_len = 1` degenerates to per-tuple
    /// processing, which is what makes `batch_size = 1` reproduce the
    /// unbatched engine exactly. Entries inside a run often carry
    /// contiguous sequence numbers (releases walk the dense global order),
    /// but contiguity is not required — only order and purpose are.
    pub fn purpose_runs(
        released: &[Released],
        max_len: usize,
    ) -> impl Iterator<Item = &[Released]> {
        let max_len = max_len.max(1);
        let mut start = 0usize;
        std::iter::from_fn(move || {
            if start >= released.len() {
                return None;
            }
            let purpose = released[start].purpose;
            let mut end = start + 1;
            while end < released.len() && end - start < max_len && released[end].purpose == purpose
            {
                end += 1;
            }
            let run = &released[start..end];
            start = end;
            Some(run)
        })
    }

    fn release(&mut self, out: &mut Vec<Released>) {
        let Some(watermark) = self.watermark() else { return };
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.seq > watermark {
                break;
            }
            let Some(Reverse(p)) = self.heap.pop() else { break };
            self.stats.released += 1;
            out.push(Released { router: p.router, seq: p.seq, purpose: p.purpose, tuple: p.tuple });
        }
    }

    /// Fault injection for auditor tests: force `router`'s frontier to
    /// `seq`, bypassing the monotonic `max` that [`ReorderBuffer::offer`]
    /// applies to punctuations, then release whatever the corrupt
    /// watermark unblocks. This simulates a broken watermark computation
    /// (e.g. a frontier advancing on data instead of punctuation) so tests
    /// can prove the invariant auditor catches the resulting premature,
    /// out-of-order releases. Never called by production code.
    #[doc(hidden)]
    pub fn debug_corrupt_frontier(
        &mut self,
        router: RouterId,
        seq: SeqNo,
        out: &mut Vec<Released>,
    ) {
        self.frontiers.insert(router, seq);
        self.release(out);
    }

    /// Fault injection for watchdog tests: while frozen, punctuations stop
    /// advancing frontiers, so the watermark flatlines and offered data
    /// piles up in the buffer — a seeded frontier stall (wedged ordering)
    /// the progress watchdog must flag within its tick bound. Unfreezing
    /// does not retroactively apply missed punctuations; later ones
    /// re-advance the frontier as usual. Never called by production code.
    #[doc(hidden)]
    pub fn debug_freeze_frontier(&mut self, on: bool) {
        self.frozen = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::punct::Punctuation;
    use bistream_types::rel::Rel;
    use bistream_types::value::Value;

    fn data(router: RouterId, seq: SeqNo, k: i64) -> StreamMessage {
        StreamMessage::Data {
            router,
            seq,
            purpose: Purpose::Store,
            tuple: Tuple::new(Rel::R, seq, vec![Value::Int(k)]),
        }
    }

    fn punct(router: RouterId, seq: SeqNo) -> StreamMessage {
        StreamMessage::Punct(Punctuation { router, seq })
    }

    fn drain(buf: &mut ReorderBuffer, msgs: Vec<StreamMessage>) -> Vec<(SeqNo, RouterId)> {
        let mut out = Vec::new();
        for m in msgs {
            buf.offer(m, &mut out);
        }
        out.iter().map(|r| (r.seq, r.router)).collect()
    }

    #[test]
    fn nothing_releases_before_punctuation() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        let released = drain(&mut buf, vec![data(0, 1, 10), data(0, 2, 20)]);
        assert!(released.is_empty());
        assert_eq!(buf.depth(), 2);
    }

    #[test]
    fn punctuation_releases_up_to_frontier_in_order() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        // Out-of-order arrival on… wait, a single channel is FIFO, but the
        // joiner merges channels; simulate two gaps then the punctuation.
        let released = drain(&mut buf, vec![data(0, 2, 20), data(0, 1, 10), punct(0, 2)]);
        assert_eq!(released, vec![(1, 0), (2, 0)], "sorted by seq");
        assert_eq!(buf.depth(), 0);
    }

    #[test]
    fn watermark_is_min_over_routers() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        buf.register_router(1, 0);
        let mut released = drain(&mut buf, vec![data(0, 1, 1), data(1, 1, 2), punct(0, 5)]);
        assert!(released.is_empty(), "router 1 has not punctuated");
        released = drain(&mut buf, vec![punct(1, 1)]);
        // watermark = min(5, 1) = 1 → both seq-1 messages release, router
        // order ties broken by router id.
        assert_eq!(released, vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn global_order_is_seq_then_router() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        buf.register_router(1, 0);
        let released = drain(
            &mut buf,
            vec![
                data(1, 1, 0),
                data(0, 2, 0),
                data(0, 1, 0),
                data(1, 2, 0),
                punct(0, 2),
                punct(1, 2),
            ],
        );
        assert_eq!(released, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn late_router_stalls_until_registered_frontier_moves() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        // Data from an unregistered router auto-registers it at 0 and
        // stalls everything until it punctuates.
        let released = drain(&mut buf, vec![data(7, 1, 0), punct(0, 10)]);
        assert!(released.is_empty());
        let released = drain(&mut buf, vec![punct(7, 1)]);
        assert_eq!(released, vec![(1, 7)]);
    }

    #[test]
    fn scale_out_registration_skips_history() {
        let mut buf = ReorderBuffer::new();
        // A joiner created when router 0 was already at seq 100.
        buf.register_router(0, 100);
        let released = drain(&mut buf, vec![data(0, 101, 0), punct(0, 101)]);
        assert_eq!(released, vec![(101, 0)]);
    }

    #[test]
    fn frontier_never_regresses() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        let mut out = Vec::new();
        buf.offer(punct(0, 10), &mut out);
        buf.offer(punct(0, 5), &mut out); // stale punctuation: ignored
                                          // Data at/below the frontier can only be a duplicate (FIFO says
                                          // the original was delivered before punct 10), so it is dropped…
        buf.offer(data(0, 7, 0), &mut out);
        assert!(out.is_empty());
        assert_eq!(buf.stats().duplicates_dropped, 1);
        // …while fresh data above the un-regressed frontier still flows.
        buf.offer(data(0, 11, 0), &mut out);
        buf.offer(punct(0, 11), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn redelivered_duplicates_below_the_frontier_are_dropped() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        let mut out = Vec::new();
        buf.offer(data(0, 1, 10), &mut out);
        buf.offer(punct(0, 1), &mut out);
        assert_eq!(out.len(), 1, "released once");
        // The transport redelivers the same message (unacked crash).
        buf.offer(data(0, 1, 10), &mut out);
        assert_eq!(out.len(), 1, "duplicate not released again");
        assert_eq!(buf.depth(), 0, "duplicate not buffered either");
        assert_eq!(buf.stats().duplicates_dropped, 1);
    }

    #[test]
    fn frontier_lag_measures_router_spread() {
        let mut buf = ReorderBuffer::new();
        assert_eq!(buf.frontier_lag(), 0, "no routers yet");
        buf.register_router(0, 0);
        buf.register_router(1, 0);
        let mut out = Vec::new();
        buf.offer(punct(0, 10), &mut out);
        assert_eq!(buf.watermark(), Some(0));
        assert_eq!(buf.max_frontier(), Some(10));
        assert_eq!(buf.frontier_lag(), 10);
        buf.offer(punct(1, 8), &mut out);
        assert_eq!(buf.frontier_lag(), 2);
    }

    #[test]
    fn purpose_runs_split_on_purpose_flips_and_length_cap() {
        let rel = |purpose, seq| Released {
            router: 0,
            seq,
            purpose,
            tuple: Tuple::new(Rel::R, seq, vec![Value::Int(0)]),
        };
        let released = vec![
            rel(Purpose::Store, 1),
            rel(Purpose::Store, 2),
            rel(Purpose::Join, 3),
            rel(Purpose::Store, 4),
            rel(Purpose::Store, 5),
            rel(Purpose::Store, 6),
        ];
        let runs: Vec<(Purpose, usize)> =
            ReorderBuffer::purpose_runs(&released, 64).map(|r| (r[0].purpose, r.len())).collect();
        assert_eq!(
            runs,
            vec![(Purpose::Store, 2), (Purpose::Join, 1), (Purpose::Store, 3)],
            "maximal same-purpose runs"
        );
        // A cap of 2 splits the trailing store run.
        let capped: Vec<usize> =
            ReorderBuffer::purpose_runs(&released, 2).map(|r| r.len()).collect();
        assert_eq!(capped, vec![2, 1, 2, 1]);
        // Cap 1 (and the degenerate 0) is per-tuple processing.
        assert_eq!(ReorderBuffer::purpose_runs(&released, 1).count(), 6);
        assert_eq!(ReorderBuffer::purpose_runs(&released, 0).count(), 6);
        assert_eq!(ReorderBuffer::purpose_runs(&[], 8).count(), 0);
    }

    #[test]
    fn stats_track_depth_and_counts() {
        let mut buf = ReorderBuffer::new();
        buf.register_router(0, 0);
        let mut out = Vec::new();
        buf.offer(data(0, 1, 0), &mut out);
        buf.offer(data(0, 2, 0), &mut out);
        buf.offer(punct(0, 2), &mut out);
        let s = buf.stats();
        assert_eq!(s.buffered, 2);
        assert_eq!(s.released, 2);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.punctuations, 1);
    }
}
