//! Tuple sources: turn an arrival process plus a key distribution into a
//! deterministic stream of tuples for one relation, and interleave the two
//! relations into the single timestamp-ordered feed the drivers consume.
//!
//! Generated tuples follow one convention used across the whole workspace:
//! attribute 0 is the join key (`Int`), attribute 1 a per-source sequence
//! id (`Int`), attribute 2 an optional payload string used to inflate the
//! per-tuple footprint for memory experiments.

use crate::arrival::{ArrivalClock, ArrivalProcess};
use crate::keys::{KeyDist, KeySampler};
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic generator of one relation's stream.
#[derive(Debug)]
pub struct StreamSource {
    rel: Rel,
    clock: ArrivalClock,
    keys: KeySampler,
    rng: StdRng,
    seq: i64,
    payload_bytes: usize,
}

impl StreamSource {
    /// Create a source for `rel` with the given arrival process, key
    /// distribution and seed. `payload_bytes` pads each tuple with a
    /// string attribute of that many bytes (0 omits the attribute).
    pub fn new(
        rel: Rel,
        arrivals: ArrivalProcess,
        keys: KeyDist,
        payload_bytes: usize,
        seed: u64,
    ) -> StreamSource {
        StreamSource {
            rel,
            clock: arrivals.clock(0),
            keys: keys.sampler(),
            // Derive a distinct stream per (seed, rel) so R and S are
            // independent even when built from one experiment seed.
            rng: StdRng::seed_from_u64(
                seed ^ (rel.as_byte() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            seq: 0,
            payload_bytes,
        }
    }

    /// The relation this source feeds.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// Timestamp of the next tuple, without consuming it.
    pub fn peek_ts(&self) -> Ts {
        self.clock.peek()
    }

    /// Produce the next tuple. The key draw is time-aware so that
    /// shifting distributions rotate their hot set with the stream clock;
    /// stationary distributions are unaffected.
    pub fn next_tuple(&mut self) -> Tuple {
        let ts = self.clock.next_arrival(&mut self.rng);
        let key = self.keys.sample_at(&mut self.rng, ts) as i64;
        let seq = self.seq;
        self.seq += 1;
        let mut values = vec![Value::Int(key), Value::Int(seq)];
        if self.payload_bytes > 0 {
            values.push(Value::Str("x".repeat(self.payload_bytes)));
        }
        Tuple::new(self.rel, ts, values)
    }

    /// Produce all tuples with timestamp strictly below `until`.
    pub fn drain_until(&mut self, until: Ts) -> Vec<Tuple> {
        let mut out = Vec::new();
        while self.peek_ts() < until {
            out.push(self.next_tuple());
        }
        out
    }

    /// Tuples produced so far.
    pub fn produced(&self) -> i64 {
        self.seq
    }
}

/// Merge the two relation sources into one stream ordered by timestamp
/// (ties broken R-first, deterministically), producing up to `limit`
/// tuples. This is the "tuples enter the system through one entry
/// exchange" feed of the architecture.
pub fn interleave(r: &mut StreamSource, s: &mut StreamSource, limit: usize) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(limit);
    while out.len() < limit {
        if r.peek_ts() <= s.peek_ts() {
            out.push(r.next_tuple());
        } else {
            out.push(s.next_tuple());
        }
    }
    out
}

/// An endless interleaved feed over the two sources, for drivers that pull
/// one tuple at a time against a virtual clock.
#[derive(Debug)]
pub struct Interleaver {
    /// R-side source.
    pub r: StreamSource,
    /// S-side source.
    pub s: StreamSource,
}

impl Interleaver {
    /// Combine two sources (one per relation).
    ///
    /// # Panics
    /// If the sources are not one R and one S.
    pub fn new(r: StreamSource, s: StreamSource) -> Interleaver {
        assert_eq!(r.rel(), Rel::R);
        assert_eq!(s.rel(), Rel::S);
        Interleaver { r, s }
    }

    /// Timestamp of the next tuple overall.
    pub fn peek_ts(&self) -> Ts {
        self.r.peek_ts().min(self.s.peek_ts())
    }

    /// Next tuple in global timestamp order (ties R-first).
    pub fn next_tuple(&mut self) -> Tuple {
        if self.r.peek_ts() <= self.s.peek_ts() {
            self.r.next_tuple()
        } else {
            self.s.next_tuple()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(rel: Rel, rate: f64, seed: u64) -> StreamSource {
        StreamSource::new(
            rel,
            ArrivalProcess::Constant { rate },
            KeyDist::Uniform { n: 100 },
            0,
            seed,
        )
    }

    #[test]
    fn tuples_follow_convention() {
        let mut s = StreamSource::new(
            Rel::S,
            ArrivalProcess::Constant { rate: 10.0 },
            KeyDist::Uniform { n: 5 },
            16,
            1,
        );
        let t = s.next_tuple();
        assert_eq!(t.rel(), Rel::S);
        assert!(t.get(0).unwrap().as_int().unwrap() < 5);
        assert_eq!(t.get(1), Some(&Value::Int(0)));
        assert_eq!(t.get(2).unwrap().as_str().unwrap().len(), 16);
        let t2 = s.next_tuple();
        assert_eq!(t2.get(1), Some(&Value::Int(1)), "seq increments");
        assert_eq!(t2.ts() - t.ts(), 100, "10/s spacing");
    }

    #[test]
    fn same_seed_reproduces_stream() {
        let a: Vec<Tuple> = {
            let mut s = source(Rel::R, 100.0, 42);
            (0..50).map(|_| s.next_tuple()).collect()
        };
        let b: Vec<Tuple> = {
            let mut s = source(Rel::R, 100.0, 42);
            (0..50).map(|_| s.next_tuple()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_relations_differ_under_one_seed() {
        let mut r = source(Rel::R, 100.0, 42);
        let mut s = source(Rel::S, 100.0, 42);
        let rk: Vec<i64> =
            (0..20).map(|_| r.next_tuple().get(0).unwrap().as_int().unwrap()).collect();
        let sk: Vec<i64> =
            (0..20).map(|_| s.next_tuple().get(0).unwrap().as_int().unwrap()).collect();
        assert_ne!(rk, sk);
    }

    #[test]
    fn interleave_is_timestamp_ordered_with_both_sides() {
        let mut r = source(Rel::R, 100.0, 1);
        let mut s = source(Rel::S, 70.0, 2);
        let feed = interleave(&mut r, &mut s, 200);
        assert_eq!(feed.len(), 200);
        for w in feed.windows(2) {
            assert!(w[0].ts() <= w[1].ts());
        }
        assert!(feed.iter().any(|t| t.rel() == Rel::R));
        assert!(feed.iter().any(|t| t.rel() == Rel::S));
    }

    #[test]
    fn drain_until_respects_bound() {
        let mut r = source(Rel::R, 100.0, 1);
        let batch = r.drain_until(105);
        assert_eq!(batch.len(), 11, "arrivals at 0,10,…,100");
        assert!(batch.iter().all(|t| t.ts() < 105));
        assert_eq!(r.peek_ts(), 110);
    }

    #[test]
    fn shifting_zipf_source_rotates_hot_keys_over_stream_time() {
        // 1000 t/s, hot set rotating every 500 ms: collect the modal key
        // of each 500-tuple chunk and require it to change across chunks.
        let mut s = StreamSource::new(
            Rel::R,
            ArrivalProcess::Constant { rate: 1_000.0 },
            KeyDist::ShiftingZipf { n: 1_000, theta: 1.2, period_ms: 500 },
            0,
            9,
        );
        let modal = |tuples: &[Tuple]| {
            let mut counts = std::collections::HashMap::new();
            for t in tuples {
                *counts.entry(t.get(0).unwrap().as_int().unwrap()).or_insert(0usize) += 1;
            }
            let (key, n) = counts.into_iter().max_by_key(|&(_, n)| n).unwrap();
            assert!(n > 100, "modal key should dominate its period: {n}/500");
            key
        };
        let chunks: Vec<i64> = (0..4)
            .map(|_| modal(&(0..500).map(|_| s.next_tuple()).collect::<Vec<_>>()))
            .collect();
        assert!(
            chunks.windows(2).any(|w| w[0] != w[1]),
            "hot key never rotated: {chunks:?}"
        );
    }

    #[test]
    fn interleaver_struct_matches_function() {
        let feed_fn = {
            let mut r = source(Rel::R, 90.0, 3);
            let mut s = source(Rel::S, 110.0, 4);
            interleave(&mut r, &mut s, 100)
        };
        let feed_struct = {
            let mut i = Interleaver::new(source(Rel::R, 90.0, 3), source(Rel::S, 110.0, 4));
            (0..100).map(|_| i.next_tuple()).collect::<Vec<_>>()
        };
        assert_eq!(feed_fn, feed_struct);
    }
}
