//! Named workloads used by the experiments, examples and tests.
//!
//! Each scenario bundles the two stream sources, the join predicate and
//! the window — everything a driver needs. The three families mirror the
//! application classes the paper's introduction motivates:
//!
//! - **orders × payments** — click-stream/transaction matching, an
//!   equi-join on order id (low selectivity, hash-routable).
//! - **bids × asks** — market matching, a band join on price (the
//!   non-equi class the biclique model exists to serve at scale).
//! - **audit cross** — a deliberately tiny cross/theta workload exercising
//!   the full-Cartesian capability.

use crate::arrival::ArrivalProcess;
use crate::keys::KeyDist;
use crate::schedule::RateSchedule;
use crate::source::StreamSource;
use bistream_types::predicate::{CmpOp, JoinPredicate};
use bistream_types::rel::Rel;
use bistream_types::time::{Ts, SECOND};
use bistream_types::window::WindowSpec;

/// A fully-specified workload: sources + predicate + window.
#[derive(Debug)]
pub struct Scenario {
    /// Human-readable name (printed by the experiment harness).
    pub name: &'static str,
    /// R-side source.
    pub r: StreamSource,
    /// S-side source.
    pub s: StreamSource,
    /// The join predicate.
    pub predicate: JoinPredicate,
    /// The window.
    pub window: WindowSpec,
}

/// Parameters shared by the scenario constructors.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Per-relation arrival rate, tuples/second.
    pub rate_per_sec: f64,
    /// Key universe size.
    pub n_keys: u64,
    /// Zipf skew (`None` = uniform keys).
    pub zipf_theta: Option<f64>,
    /// Window length in ms.
    pub window_ms: Ts,
    /// Padding bytes per tuple.
    pub payload_bytes: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            rate_per_sec: 1_000.0,
            n_keys: 10_000,
            zipf_theta: None,
            window_ms: 10 * SECOND,
            payload_bytes: 0,
            seed: 0xB15_7EA4,
        }
    }
}

impl ScenarioParams {
    fn keys(&self) -> KeyDist {
        match self.zipf_theta {
            Some(theta) => KeyDist::Zipf { n: self.n_keys, theta },
            None => KeyDist::Uniform { n: self.n_keys },
        }
    }

    fn sources(&self) -> (StreamSource, StreamSource) {
        let arrivals = ArrivalProcess::Constant { rate: self.rate_per_sec };
        (
            StreamSource::new(Rel::R, arrivals.clone(), self.keys(), self.payload_bytes, self.seed),
            StreamSource::new(Rel::S, arrivals, self.keys(), self.payload_bytes, self.seed),
        )
    }
}

/// Orders×payments equi-join on the order id (attribute 0 of both sides).
pub fn orders_payments_equi(p: ScenarioParams) -> Scenario {
    let (r, s) = p.sources();
    Scenario {
        name: "orders-payments-equi",
        r,
        s,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(p.window_ms),
    }
}

/// Bids×asks band join: match when the prices (attribute 0) are within
/// `band` of each other.
pub fn bids_asks_band(p: ScenarioParams, band: f64) -> Scenario {
    let (r, s) = p.sources();
    Scenario {
        name: "bids-asks-band",
        r,
        s,
        predicate: JoinPredicate::Band { r_attr: 0, s_attr: 0, band },
        window: WindowSpec::sliding(p.window_ms),
    }
}

/// An inequality theta join (`R.key < S.key`) — the high-selectivity
/// extreme short of a full Cartesian product.
pub fn audit_theta(p: ScenarioParams) -> Scenario {
    let (r, s) = p.sources();
    Scenario {
        name: "audit-theta-lt",
        r,
        s,
        predicate: JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Lt },
        window: WindowSpec::sliding(p.window_ms),
    }
}

/// The three streams of the supply-chain multi-way scenario
/// (orders ⋈ shipments ⋈ confirmations) — the cascade example's
/// workload, generated instead of hand-written.
///
/// Returned in `(orders, shipments, confirmations)` order. Orders and
/// shipments share the order-id key space (attribute 0); shipments carry
/// a tracking id (attribute 1, value = order id + `tracking_offset`)
/// that confirmations reference in their attribute 0.
pub fn supply_chain_3way(
    p: ScenarioParams,
    tracking_offset: i64,
) -> (StreamSource, StreamSource, StreamSource) {
    let arrivals = ArrivalProcess::Constant { rate: p.rate_per_sec };
    (
        StreamSource::new(Rel::R, arrivals.clone(), p.keys(), p.payload_bytes, p.seed),
        StreamSource::new(Rel::S, arrivals.clone(), p.keys(), p.payload_bytes, p.seed ^ 0x51),
        StreamSource::new(
            Rel::S,
            arrivals,
            KeyDist::Uniform { n: p.n_keys + tracking_offset.unsigned_abs() },
            p.payload_bytes,
            p.seed ^ 0x52,
        ),
    )
}

/// The dynamic-scaling workload of E1/E2: an equi-join whose per-relation
/// rate follows the thesis's 60-minute profile, over a 10-minute window.
pub fn dynamic_scaling_workload(seed: u64, payload_bytes: usize) -> Scenario {
    let schedule = RateSchedule::thesis_profile();
    let keys = KeyDist::Uniform { n: 100_000 };
    let arrivals = ArrivalProcess::Scheduled { schedule };
    Scenario {
        name: "dynamic-scaling-equi",
        r: StreamSource::new(Rel::R, arrivals.clone(), keys.clone(), payload_bytes, seed),
        s: StreamSource::new(Rel::S, arrivals, keys, payload_bytes, seed),
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(10 * 60 * SECOND),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenarios_construct_and_produce() {
        let mut s = orders_payments_equi(ScenarioParams::default());
        assert!(s.predicate.is_equi());
        let t = s.r.next_tuple();
        assert_eq!(t.rel(), Rel::R);

        let mut b = bids_asks_band(ScenarioParams::default(), 2.0);
        assert!(!b.predicate.is_equi());
        assert_eq!(b.s.next_tuple().rel(), Rel::S);

        let a = audit_theta(ScenarioParams::default());
        assert_eq!(a.name, "audit-theta-lt");
    }

    #[test]
    fn supply_chain_sources_are_distinct_streams() {
        let (mut o, mut s, mut c) = supply_chain_3way(ScenarioParams::default(), 9_000);
        assert_eq!(o.next_tuple().rel(), Rel::R);
        assert_eq!(s.next_tuple().rel(), Rel::S);
        assert_eq!(c.next_tuple().rel(), Rel::S);
        // Different seeds → different key sequences.
        let ks: Vec<i64> =
            (0..10).map(|_| s.next_tuple().get(0).unwrap().as_int().unwrap()).collect();
        let kc: Vec<i64> =
            (0..10).map(|_| c.next_tuple().get(0).unwrap().as_int().unwrap()).collect();
        assert_ne!(ks, kc);
    }

    #[test]
    fn dynamic_workload_follows_profile() {
        let mut w = dynamic_scaling_workload(1, 0);
        assert_eq!(w.window.size(), Some(600 * SECOND));
        // At 300/s the first two arrivals are ~3.33ms apart.
        let a = w.r.next_tuple();
        let b = w.r.next_tuple();
        assert!(b.ts() - a.ts() <= 4);
    }

    #[test]
    fn skewed_params_yield_skewed_keys() {
        let p = ScenarioParams { zipf_theta: Some(0.99), n_keys: 1_000, ..Default::default() };
        let mut s = orders_payments_equi(p);
        let mut hot = 0;
        for _ in 0..2_000 {
            if s.r.next_tuple().get(0).unwrap().as_int().unwrap() == 0 {
                hot += 1;
            }
        }
        assert!(hot > 50, "rank-0 key should be hot, got {hot}/2000");
    }
}
