//! Piecewise-constant rate schedules.
//!
//! The dynamic-scaling experiments drive the system with a rate that steps
//! over time (E1/E2: 300 t/s for 10 min, 400 t/s for 30 min, 200 t/s for
//! 10 min, 300 t/s for 10 min). A `RateSchedule` is that step function.

use bistream_types::time::{Ts, MINUTE};
use serde::{Deserialize, Serialize};

/// A step function from time to arrival rate (tuples/second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    /// `(from_ts, rate)` steps, sorted by `from_ts`, first at 0.
    steps: Vec<(Ts, f64)>,
}

impl RateSchedule {
    /// A constant rate.
    pub fn constant(rate_per_sec: f64) -> RateSchedule {
        RateSchedule { steps: vec![(0, rate_per_sec)] }
    }

    /// Build from `(from_ts, rate)` steps. Steps are sorted; a step at 0
    /// is required (the schedule must be total).
    ///
    /// # Panics
    /// If `steps` is empty or no step starts at time 0.
    pub fn new(mut steps: Vec<(Ts, f64)>) -> RateSchedule {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        steps.sort_by_key(|(t, _)| *t);
        assert_eq!(steps[0].0, 0, "first step must start at t=0");
        RateSchedule { steps }
    }

    /// The 60-minute profile of the dynamic-scaling experiments
    /// (thesis Figs. 20/21): 300 → 400 (at 10') → 200 (at 40') → 300
    /// (at 50') tuples/second.
    pub fn thesis_profile() -> RateSchedule {
        RateSchedule::new(vec![
            (0, 300.0),
            (10 * MINUTE, 400.0),
            (40 * MINUTE, 200.0),
            (50 * MINUTE, 300.0),
        ])
    }

    /// Rate in effect at time `ts`.
    pub fn rate_at(&self, ts: Ts) -> f64 {
        match self.steps.binary_search_by_key(&ts, |(t, _)| *t) {
            Ok(i) => self.steps[i].1,
            Err(0) => self.steps[0].1, // unreachable given the t=0 invariant
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Expected number of tuples in `[0, until_ts)` — the integral of the
    /// step function, used to size experiment buffers.
    pub fn expected_count(&self, until_ts: Ts) -> f64 {
        let mut total = 0.0;
        for (i, &(from, rate)) in self.steps.iter().enumerate() {
            if from >= until_ts {
                break;
            }
            let to = self.steps.get(i + 1).map(|&(t, _)| t.min(until_ts)).unwrap_or(until_ts);
            total += rate * (to.saturating_sub(from)) as f64 / 1_000.0;
        }
        total
    }

    /// The steps of the schedule.
    pub fn steps(&self) -> &[(Ts, f64)] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_everywhere() {
        let s = RateSchedule::constant(250.0);
        assert_eq!(s.rate_at(0), 250.0);
        assert_eq!(s.rate_at(u64::MAX), 250.0);
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let s = RateSchedule::thesis_profile();
        assert_eq!(s.rate_at(0), 300.0);
        assert_eq!(s.rate_at(10 * MINUTE - 1), 300.0);
        assert_eq!(s.rate_at(10 * MINUTE), 400.0);
        assert_eq!(s.rate_at(40 * MINUTE), 200.0);
        assert_eq!(s.rate_at(55 * MINUTE), 300.0);
    }

    #[test]
    fn expected_count_integrates_steps() {
        let s = RateSchedule::new(vec![(0, 100.0), (1_000, 200.0)]);
        // 1 second at 100/s + 1 second at 200/s.
        assert_eq!(s.expected_count(2_000), 300.0);
        // Truncated mid-step.
        assert_eq!(s.expected_count(1_500), 200.0);
        // Thesis profile: 10'·300 + 30'·400 + 10'·200 + 10'·300 per second.
        let t = RateSchedule::thesis_profile();
        let expect = (10.0 * 300.0 + 30.0 * 400.0 + 10.0 * 200.0 + 10.0 * 300.0) * 60.0;
        assert_eq!(t.expected_count(60 * MINUTE), expect);
    }

    #[test]
    fn unsorted_steps_are_sorted() {
        let s = RateSchedule::new(vec![(1_000, 2.0), (0, 1.0)]);
        assert_eq!(s.rate_at(500), 1.0);
        assert_eq!(s.rate_at(1_000), 2.0);
    }

    #[test]
    #[should_panic(expected = "first step must start at t=0")]
    fn missing_origin_panics() {
        let _ = RateSchedule::new(vec![(5, 1.0)]);
    }
}
