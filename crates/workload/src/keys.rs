//! Join-key distributions.
//!
//! Skew is the axis that separates the routing strategies (E5): hash
//! routing collapses under a hot key, random routing is immune, ContRand
//! sits between. `KeyDist` provides uniform, Zipf, and time-shifting Zipf
//! keys over a fixed key universe `[0, n)`; the shifting variant is the
//! adversary for the skew-adaptive router (the hot set rotates every
//! period, so a tuned strategy must re-tune to keep up).

use bistream_types::time::Ts;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over the key universe `0..n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform {
        /// Universe size.
        n: u64,
    },
    /// Zipf with exponent `theta` (0 = uniform-ish, 0.99 = heavily
    /// skewed; YCSB's default is 0.99). Key 0 is the hottest.
    Zipf {
        /// Universe size.
        n: u64,
        /// Skew exponent in `(0, 1)`.
        theta: f64,
    },
    /// Exact Zipf (any `theta > 0`, including ≥ 1) whose rank→key mapping
    /// rotates every `period_ms`: the identity of the hot keys jumps to a
    /// deterministic pseudo-random offset each period while the *shape*
    /// of the skew stays fixed. This is the adversary the skew-adaptive
    /// router must chase — a strategy tuned to one hot set goes stale one
    /// period later.
    ShiftingZipf {
        /// Universe size.
        n: u64,
        /// Skew exponent (`> 0`; values ≥ 1 give the heavy adversarial
        /// skew the adaptive-routing acceptance runs use).
        theta: f64,
        /// How long one hot set stays put, in stream-time milliseconds.
        period_ms: u64,
    },
}

impl KeyDist {
    /// Universe size.
    pub fn universe(&self) -> u64 {
        match self {
            KeyDist::Uniform { n }
            | KeyDist::Zipf { n, .. }
            | KeyDist::ShiftingZipf { n, .. } => *n,
        }
    }

    /// Build a stateful sampler for this distribution.
    pub fn sampler(&self) -> KeySampler {
        match *self {
            KeyDist::Uniform { n } => KeySampler::Uniform { n: n.max(1) },
            KeyDist::Zipf { n, theta } => KeySampler::Zipf(ZipfSampler::new(n.max(1), theta)),
            KeyDist::ShiftingZipf { n, theta, period_ms } => {
                KeySampler::Shifting(ShiftingZipf::new(n.max(1), theta, period_ms.max(1)))
            }
        }
    }
}

/// A ready-to-sample key generator.
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over `0..n`.
    Uniform {
        /// Universe size.
        n: u64,
    },
    /// Zipfian (see [`ZipfSampler`]).
    Zipf(ZipfSampler),
    /// Time-varying Zipf (see [`ShiftingZipf`]).
    Shifting(ShiftingZipf),
}

impl KeySampler {
    /// Draw one key, ignoring stream time (shifting distributions use
    /// their `ts = 0` hot set).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        self.sample_at(rng, 0)
    }

    /// Draw one key for a tuple stamped `ts`. Stationary distributions
    /// ignore `ts`; [`KeySampler::Shifting`] rotates its hot set to the
    /// period `ts` falls in. Every variant consumes exactly the draws of
    /// its stationary counterpart, so switching a sweep to a shifting
    /// distribution does not perturb arrival times.
    pub fn sample_at<R: Rng>(&self, rng: &mut R, ts: Ts) -> u64 {
        match self {
            KeySampler::Uniform { n } => rng.gen_range(0..*n),
            KeySampler::Zipf(z) => z.sample(rng),
            KeySampler::Shifting(s) => s.sample_at(rng, ts),
        }
    }
}

/// SplitMix64 — derives the per-period rotation offsets.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact Zipf sampling by inversion over a precomputed cumulative table.
///
/// Unlike [`ZipfSampler`] (the YCSB constant-time approximation, valid
/// only for `theta` in `(0, 1)`), this pays `O(n)` memory and `O(log n)`
/// per draw for an *exact* distribution at any exponent — including the
/// `theta ≥ 1` regimes where a single key draws an outright majority of
/// the stream. Universes in the experiments are ≤ ~1e6, so the table is
/// at most a few MB and is built once per run.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    /// `cdf[i]` = P(rank ≤ i); strictly increasing, last entry 1.0.
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build the cumulative table for universe `n` (≥ 1) and exponent
    /// `theta` (clamped to ≥ 0).
    pub fn new(n: u64, theta: f64) -> ZipfTable {
        let n = n.max(1);
        let theta = theta.max(0.0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Draw one popularity rank (0 hottest) by binary-searching the table.
    pub fn sample_rank<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u64
    }

    /// Analytic probability of rank 0.
    pub fn hottest_probability(&self) -> f64 {
        self.cdf[0]
    }
}

/// Exact Zipf whose rank→key mapping rotates each period: during period
/// `p = ts / period_ms` the key of popularity rank `r` is
/// `(r + offset(p)) mod n`, with `offset` a SplitMix64-derived
/// pseudo-random jump. The mapping stays a bijection inside every period
/// (the skew shape never changes) while the hot-key *identities* move
/// far on each boundary — the worst case for a strategy that froze its
/// hot set.
#[derive(Debug, Clone)]
pub struct ShiftingZipf {
    table: ZipfTable,
    n: u64,
    period_ms: u64,
}

impl ShiftingZipf {
    /// Build for universe `n`, exponent `theta`, hot-set lifetime
    /// `period_ms` (all clamped to ≥ 1).
    pub fn new(n: u64, theta: f64, period_ms: u64) -> ShiftingZipf {
        let n = n.max(1);
        ShiftingZipf { table: ZipfTable::new(n, theta), n, period_ms: period_ms.max(1) }
    }

    /// The rotation offset of the period containing `ts`.
    pub fn offset_at(&self, ts: Ts) -> u64 {
        splitmix64(ts / self.period_ms) % self.n
    }

    /// The key holding popularity rank `rank` at stream time `ts`.
    pub fn key_of_rank(&self, rank: u64, ts: Ts) -> u64 {
        (rank + self.offset_at(ts)) % self.n
    }

    /// Draw one key for a tuple stamped `ts` (exactly one `f64` draw).
    pub fn sample_at<R: Rng>(&self, rng: &mut R, ts: Ts) -> u64 {
        let rank = self.table.sample_rank(rng);
        self.key_of_rank(rank, ts)
    }

    /// The configured universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }
}

/// Constant-time Zipf sampling after Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD '94), the formulation used
/// by YCSB's `ZipfianGenerator`.
///
/// Popularity rank 0 is the hottest key. `theta = 0` degenerates to a
/// near-uniform distribution; values around 0.99 give the classic heavy
/// skew where the top key draws a double-digit percentage of samples.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_2: f64,
}

impl ZipfSampler {
    /// Precompute the sampling constants for universe `n` and skew `theta`.
    ///
    /// `theta` is clamped into `(0, 1)` exclusive — the harmonic formulas
    /// are singular at 1.0 — with `0` mapped to a tiny positive skew, which
    /// keeps `KeyDist::Zipf { theta: 0.0 }` usable as "no skew" in sweeps.
    pub fn new(n: u64, theta: f64) -> ZipfSampler {
        let theta = theta.clamp(1e-9, 0.999_999);
        let zeta_n = Self::zeta(n, theta);
        let zeta_2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        ZipfSampler { n, theta, alpha, zeta_n, eta, zeta_2 }
    }

    /// The generalised harmonic number `H_{n,theta}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; universes in the experiments are <= ~1e6 and
        // samplers are built once per run.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw one key (popularity rank, 0 hottest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The configured universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Analytic probability of rank 0 (the hottest key); used by tests to
    /// sanity-check the empirical skew.
    pub fn hottest_probability(&self) -> f64 {
        1.0 / self.zeta_n
    }

    /// Suppress dead-code warnings for the constant kept for documentation
    /// of the two-point speedup; `zeta_2` participates in `eta` already.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB15)
    }

    #[test]
    fn uniform_covers_universe_evenly() {
        let s = KeyDist::Uniform { n: 10 }.sampler();
        let mut counts = [0usize; 10];
        let mut r = rng();
        for _ in 0..10_000 {
            counts[s.sample(&mut r) as usize] += 1;
        }
        for c in counts {
            assert!(c > 800 && c < 1_200, "{counts:?}");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_rank_zero() {
        let z = ZipfSampler::new(1_000, 0.99);
        let mut r = rng();
        let mut hot = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut r) == 0 {
                hot += 1;
            }
        }
        let empirical = hot as f64 / total as f64;
        let analytic = z.hottest_probability();
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
        assert!(empirical > 0.08, "theta=0.99 should make rank 0 hot: {empirical}");
    }

    #[test]
    fn zipf_theta_zero_is_near_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut r = rng();
        let mut hot = 0usize;
        for _ in 0..20_000 {
            if z.sample(&mut r) == 0 {
                hot += 1;
            }
        }
        let p = hot as f64 / 20_000.0;
        assert!(p < 0.03, "near-uniform hot key probability, got {p}");
    }

    #[test]
    fn zipf_stays_in_universe() {
        for theta in [0.0, 0.5, 0.9, 0.99] {
            let z = ZipfSampler::new(7, theta);
            let mut r = rng();
            for _ in 0..5_000 {
                assert!(z.sample(&mut r) < 7);
            }
        }
    }

    #[test]
    fn skew_increases_with_theta() {
        let mut r = rng();
        let mut hot_share = |theta: f64| {
            let z = ZipfSampler::new(1_000, theta);
            let mut hot = 0usize;
            for _ in 0..20_000 {
                if z.sample(&mut r) < 10 {
                    hot += 1;
                }
            }
            hot as f64 / 20_000.0
        };
        let low = hot_share(0.3);
        let high = hot_share(0.95);
        assert!(high > low + 0.1, "theta 0.95 ({high}) ≫ theta 0.3 ({low})");
    }

    #[test]
    fn determinism_same_seed_same_keys() {
        let s = KeyDist::Zipf { n: 50, theta: 0.8 }.sampler();
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..100).map(|_| s.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..100).map(|_| s.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_universe() {
        let s = KeyDist::Uniform { n: 0 }.sampler(); // clamped to 1
        let mut r = rng();
        assert_eq!(s.sample(&mut r), 0);
        let z = ZipfSampler::new(1, 0.9);
        assert_eq!(z.sample(&mut r), 0);
    }

    #[test]
    fn zipf_table_is_exact_at_steep_theta() {
        // theta = 1.2 is past where the YCSB approximation is valid; the
        // table sampler must still match its own analytic rank-0 mass.
        let t = ZipfTable::new(1_000, 1.2);
        let analytic = t.hottest_probability();
        assert!(analytic > 0.3, "theta=1.2 rank 0 should dominate: {analytic}");
        let mut r = rng();
        let total = 20_000;
        let hot = (0..total).filter(|_| t.sample_rank(&mut r) == 0).count();
        let empirical = hot as f64 / total as f64;
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn zipf_table_stays_in_universe() {
        for theta in [0.0, 0.99, 1.2, 2.0] {
            let t = ZipfTable::new(13, theta);
            let mut r = rng();
            for _ in 0..5_000 {
                assert!(t.sample_rank(&mut r) < 13);
            }
        }
    }

    #[test]
    fn shifting_zipf_rotates_the_hot_key_between_periods() {
        let s = ShiftingZipf::new(10_000, 1.2, 1_000);
        // Within one period the mapping is constant…
        assert_eq!(s.key_of_rank(0, 0), s.key_of_rank(0, 999));
        // …and across periods the hot key identity jumps.
        let hot0 = s.key_of_rank(0, 0);
        let mut moved = 0;
        for p in 1..=8u64 {
            if s.key_of_rank(0, p * 1_000) != hot0 {
                moved += 1;
            }
        }
        assert!(moved >= 7, "hot key should move nearly every period: {moved}/8");
    }

    #[test]
    fn shifting_zipf_concentrates_on_the_period_hot_key() {
        let dist = KeyDist::ShiftingZipf { n: 1_000, theta: 1.2, period_ms: 500 };
        let s = dist.sampler();
        let KeySampler::Shifting(inner) = &s else {
            panic!("sampler variant");
        };
        for ts in [0u64, 1_700, 9_999] {
            let hot = inner.key_of_rank(0, ts);
            let mut r = rng();
            let total = 10_000;
            let hits = (0..total).filter(|_| s.sample_at(&mut r, ts) == hot).count();
            let share = hits as f64 / total as f64;
            assert!(share > 0.25, "ts={ts}: hot key share {share} too low");
        }
    }

    #[test]
    fn shifting_zipf_is_deterministic_and_time_stationary_in_draw_count() {
        let s = KeyDist::ShiftingZipf { n: 64, theta: 1.5, period_ms: 100 }.sampler();
        let run = || {
            let mut r = StdRng::seed_from_u64(7);
            (0..200u64).map(|i| s.sample_at(&mut r, i * 10)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // A shifting draw consumes exactly one f64, like the stationary
        // table sampler: feeding the same seed through both must leave the
        // RNGs in lock-step (sample() is sample_at(.., 0) by definition).
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for i in 0..200u64 {
            let _ = s.sample_at(&mut r1, i * 10);
            let _ = s.sample(&mut r2);
        }
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2), "RNGs diverged");
    }

    #[test]
    fn shifting_zipf_serde_round_trip() {
        let dist = KeyDist::ShiftingZipf { n: 4_096, theta: 1.25, period_ms: 2_000 };
        let json = serde_json::to_string(&dist).unwrap_or_default();
        assert!(json.contains("ShiftingZipf"), "{json}");
        let back: KeyDist = serde_json::from_str(&json).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back.universe(), 4_096);
        match back {
            KeyDist::ShiftingZipf { n, theta, period_ms } => {
                assert_eq!((n, period_ms), (4_096, 2_000));
                assert!((theta - 1.25).abs() < 1e-12);
            }
            other => panic!("round-trip changed variant: {other:?}"),
        }
    }
}
