//! Join-key distributions.
//!
//! Skew is the axis that separates the routing strategies (E5): hash
//! routing collapses under a hot key, random routing is immune, ContRand
//! sits between. `KeyDist` provides uniform and Zipf-distributed keys over
//! a fixed key universe `[0, n)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over the key universe `0..n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform {
        /// Universe size.
        n: u64,
    },
    /// Zipf with exponent `theta` (0 = uniform-ish, 0.99 = heavily
    /// skewed; YCSB's default is 0.99). Key 0 is the hottest.
    Zipf {
        /// Universe size.
        n: u64,
        /// Skew exponent in `(0, 1)`.
        theta: f64,
    },
}

impl KeyDist {
    /// Universe size.
    pub fn universe(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } | KeyDist::Zipf { n, .. } => *n,
        }
    }

    /// Build a stateful sampler for this distribution.
    pub fn sampler(&self) -> KeySampler {
        match *self {
            KeyDist::Uniform { n } => KeySampler::Uniform { n: n.max(1) },
            KeyDist::Zipf { n, theta } => KeySampler::Zipf(ZipfSampler::new(n.max(1), theta)),
        }
    }
}

/// A ready-to-sample key generator.
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over `0..n`.
    Uniform {
        /// Universe size.
        n: u64,
    },
    /// Zipfian (see [`ZipfSampler`]).
    Zipf(ZipfSampler),
}

impl KeySampler {
    /// Draw one key.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match self {
            KeySampler::Uniform { n } => rng.gen_range(0..*n),
            KeySampler::Zipf(z) => z.sample(rng),
        }
    }
}

/// Constant-time Zipf sampling after Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD '94), the formulation used
/// by YCSB's `ZipfianGenerator`.
///
/// Popularity rank 0 is the hottest key. `theta = 0` degenerates to a
/// near-uniform distribution; values around 0.99 give the classic heavy
/// skew where the top key draws a double-digit percentage of samples.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_2: f64,
}

impl ZipfSampler {
    /// Precompute the sampling constants for universe `n` and skew `theta`.
    ///
    /// `theta` is clamped into `(0, 1)` exclusive — the harmonic formulas
    /// are singular at 1.0 — with `0` mapped to a tiny positive skew, which
    /// keeps `KeyDist::Zipf { theta: 0.0 }` usable as "no skew" in sweeps.
    pub fn new(n: u64, theta: f64) -> ZipfSampler {
        let theta = theta.clamp(1e-9, 0.999_999);
        let zeta_n = Self::zeta(n, theta);
        let zeta_2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        ZipfSampler { n, theta, alpha, zeta_n, eta, zeta_2 }
    }

    /// The generalised harmonic number `H_{n,theta}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; universes in the experiments are <= ~1e6 and
        // samplers are built once per run.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw one key (popularity rank, 0 hottest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The configured universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Analytic probability of rank 0 (the hottest key); used by tests to
    /// sanity-check the empirical skew.
    pub fn hottest_probability(&self) -> f64 {
        1.0 / self.zeta_n
    }

    /// Suppress dead-code warnings for the constant kept for documentation
    /// of the two-point speedup; `zeta_2` participates in `eta` already.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB15)
    }

    #[test]
    fn uniform_covers_universe_evenly() {
        let s = KeyDist::Uniform { n: 10 }.sampler();
        let mut counts = [0usize; 10];
        let mut r = rng();
        for _ in 0..10_000 {
            counts[s.sample(&mut r) as usize] += 1;
        }
        for c in counts {
            assert!(c > 800 && c < 1_200, "{counts:?}");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_rank_zero() {
        let z = ZipfSampler::new(1_000, 0.99);
        let mut r = rng();
        let mut hot = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut r) == 0 {
                hot += 1;
            }
        }
        let empirical = hot as f64 / total as f64;
        let analytic = z.hottest_probability();
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
        assert!(empirical > 0.08, "theta=0.99 should make rank 0 hot: {empirical}");
    }

    #[test]
    fn zipf_theta_zero_is_near_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut r = rng();
        let mut hot = 0usize;
        for _ in 0..20_000 {
            if z.sample(&mut r) == 0 {
                hot += 1;
            }
        }
        let p = hot as f64 / 20_000.0;
        assert!(p < 0.03, "near-uniform hot key probability, got {p}");
    }

    #[test]
    fn zipf_stays_in_universe() {
        for theta in [0.0, 0.5, 0.9, 0.99] {
            let z = ZipfSampler::new(7, theta);
            let mut r = rng();
            for _ in 0..5_000 {
                assert!(z.sample(&mut r) < 7);
            }
        }
    }

    #[test]
    fn skew_increases_with_theta() {
        let mut r = rng();
        let mut hot_share = |theta: f64| {
            let z = ZipfSampler::new(1_000, theta);
            let mut hot = 0usize;
            for _ in 0..20_000 {
                if z.sample(&mut r) < 10 {
                    hot += 1;
                }
            }
            hot as f64 / 20_000.0
        };
        let low = hot_share(0.3);
        let high = hot_share(0.95);
        assert!(high > low + 0.1, "theta 0.95 ({high}) ≫ theta 0.3 ({low})");
    }

    #[test]
    fn determinism_same_seed_same_keys() {
        let s = KeyDist::Zipf { n: 50, theta: 0.8 }.sampler();
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..100).map(|_| s.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..100).map(|_| s.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_universe() {
        let s = KeyDist::Uniform { n: 0 }.sampler(); // clamped to 1
        let mut r = rng();
        assert_eq!(s.sample(&mut r), 0);
        let z = ZipfSampler::new(1, 0.9);
        assert_eq!(z.sample(&mut r), 0);
    }
}
