//! Arrival processes: when does the next tuple of a stream arrive?

use crate::schedule::RateSchedule;
use bistream_types::time::Ts;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How inter-arrival gaps are drawn for a stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Deterministic gaps: exactly `rate` tuples per second, evenly spaced.
    Constant {
        /// Tuples per second.
        rate: f64,
    },
    /// Exponential gaps (Poisson process) with intensity `rate`/second.
    Poisson {
        /// Mean tuples per second.
        rate: f64,
    },
    /// Deterministic gaps whose rate follows a [`RateSchedule`].
    Scheduled {
        /// The step function of rates.
        schedule: RateSchedule,
    },
}

impl ArrivalProcess {
    /// Build a stateful arrival clock starting at time `start`.
    pub fn clock(&self, start: Ts) -> ArrivalClock {
        ArrivalClock { process: self.clone(), next: start, carry_ms: 0.0 }
    }
}

/// Stateful generator of arrival timestamps.
///
/// Sub-millisecond gaps are handled by fractional carry, so a 3,000 t/s
/// constant process emits exactly ~3 tuples per millisecond over time
/// instead of collapsing to the millisecond grid.
#[derive(Debug, Clone)]
pub struct ArrivalClock {
    process: ArrivalProcess,
    next: Ts,
    carry_ms: f64,
}

impl ArrivalClock {
    /// Timestamp of the next arrival (and advance the clock).
    pub fn next_arrival<R: Rng>(&mut self, rng: &mut R) -> Ts {
        let at = self.next;
        let rate = match &self.process {
            ArrivalProcess::Constant { rate } => *rate,
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Scheduled { schedule } => schedule.rate_at(at),
        };
        let gap_ms = match &self.process {
            ArrivalProcess::Poisson { .. } => {
                // Exponential(rate/s) in ms: -ln(U) * 1000 / rate.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() * 1_000.0 / rate.max(1e-9)
            }
            _ => 1_000.0 / rate.max(1e-9),
        };
        let total = gap_ms + self.carry_ms;
        let whole = total.floor();
        self.carry_ms = total - whole;
        self.next = at + whole as Ts;
        at
    }

    /// Peek at the next arrival time without advancing.
    pub fn peek(&self) -> Ts {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_rate_spacing() {
        let mut c = ArrivalProcess::Constant { rate: 100.0 }.clock(0);
        let mut r = rng();
        let times: Vec<Ts> = (0..5).map(|_| c.next_arrival(&mut r)).collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn fractional_rates_carry() {
        // 300/s = 3.33ms gaps; over 300 arrivals we should span ~1s.
        let mut c = ArrivalProcess::Constant { rate: 300.0 }.clock(0);
        let mut r = rng();
        let mut last = 0;
        for _ in 0..301 {
            last = c.next_arrival(&mut r);
        }
        assert!((995..=1005).contains(&last), "300 arrivals ≈ 1s, got {last}ms");
    }

    #[test]
    fn poisson_mean_rate_close_to_lambda() {
        let mut c = ArrivalProcess::Poisson { rate: 1_000.0 }.clock(0);
        let mut r = rng();
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = c.next_arrival(&mut r);
        }
        let measured = n as f64 / (last as f64 / 1_000.0);
        assert!((measured - 1_000.0).abs() < 50.0, "poisson rate {measured} ≉ 1000");
    }

    #[test]
    fn scheduled_rate_steps_change_spacing() {
        let sched = RateSchedule::new(vec![(0, 100.0), (100, 10.0)]);
        let mut c = ArrivalProcess::Scheduled { schedule: sched }.clock(0);
        let mut r = rng();
        // First phase: 10ms gaps.
        let mut t = 0;
        while t < 100 {
            t = c.next_arrival(&mut r);
        }
        // Now gaps become 100ms.
        let a = c.next_arrival(&mut r);
        let b = c.next_arrival(&mut r);
        assert_eq!(b - a, 100);
    }

    #[test]
    fn starts_at_given_time_and_peek_is_stable() {
        let mut c = ArrivalProcess::Constant { rate: 1.0 }.clock(5_000);
        assert_eq!(c.peek(), 5_000);
        assert_eq!(c.peek(), 5_000);
        let mut r = rng();
        assert_eq!(c.next_arrival(&mut r), 5_000);
        assert_eq!(c.peek(), 6_000);
    }
}
