//! Synthetic stream workloads.
//!
//! The paper's evaluation (and the thesis's autoscaling figures) are driven
//! by streams whose interesting properties are: the **arrival rate** (and
//! how it changes over time), the **key distribution** (uniform vs skewed),
//! the **predicate selectivity** (equi vs band vs theta), and the window
//! volume those imply. This crate parameterises exactly those axes with
//! fully deterministic, seeded generators:
//!
//! - [`keys`] — uniform, Zipf (YCSB-style constant-time sampling), and
//!   time-shifting Zipf key distributions (exact table sampler, any
//!   exponent, hot set rotating per period — the adaptive-routing
//!   adversary).
//! - [`arrival`] — constant-gap and Poisson arrival processes, plus
//!   piecewise-constant [`schedule::RateSchedule`]s (e.g. the 60-minute
//!   300→400→200→300 t/s profile of the dynamic-scaling experiments).
//! - [`source`] — per-relation tuple sources producing `(ts, Tuple)`
//!   streams, and an interleaver merging R and S by timestamp.
//! - [`scenarios`] — the named workloads the experiments and examples use.
//! - [`io`] — line-oriented file adapters (the stream-service edge).

#![warn(missing_docs)]

pub mod arrival;
pub mod io;
pub mod keys;
pub mod scenarios;
pub mod schedule;
pub mod source;

pub use arrival::ArrivalProcess;
pub use keys::KeyDist;
pub use schedule::RateSchedule;
pub use source::{interleave, StreamSource};
