//! File/stream adapters: the edge where external data enters the system
//! (the role of the thesis's *stream-service*).
//!
//! Format: one tuple per line, comma-separated —
//! `rel,ts,attr0,attr1,…` — where `rel` is `R` or `S`, `ts` the event
//! timestamp in ms, and attributes are parsed against a [`Schema`]
//! (`Int`/`Float`/`Bool` literals, everything else taken as `Str`; the
//! literal `\N` is `Null`). Deliberately minimal: no quoting or embedded
//! commas — this is a workload adapter, not a CSV library.

use bistream_types::error::{Error, Result};
use bistream_types::rel::Rel;
use bistream_types::schema::Schema;
use bistream_types::tuple::{JoinResult, Tuple};
use bistream_types::value::{Value, ValueType};
use std::io::{BufRead, Write};

/// Reads schema-typed tuples from a line-oriented source.
#[derive(Debug, Clone)]
pub struct CsvTupleReader {
    r_schema: Schema,
    s_schema: Schema,
}

impl CsvTupleReader {
    /// A reader parsing R lines against `r_schema` and S lines against
    /// `s_schema`.
    pub fn new(r_schema: Schema, s_schema: Schema) -> CsvTupleReader {
        CsvTupleReader { r_schema, s_schema }
    }

    /// Parse one line. Empty lines and `#` comments yield `None`.
    pub fn parse_line(&self, line: &str) -> Result<Option<Tuple>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut fields = line.split(',');
        let rel = match fields.next().map(str::trim) {
            Some("R") => Rel::R,
            Some("S") => Rel::S,
            other => {
                return Err(Error::Codec(format!("line must start with R or S, got {other:?}")))
            }
        };
        let ts: u64 = fields
            .next()
            .map(str::trim)
            .ok_or_else(|| Error::Codec("missing timestamp field".into()))?
            .parse()
            .map_err(|e| Error::Codec(format!("bad timestamp: {e}")))?;
        let schema = match rel {
            Rel::R => &self.r_schema,
            Rel::S => &self.s_schema,
        };
        let mut values = Vec::with_capacity(schema.arity());
        for attr in schema.attributes() {
            let raw = fields
                .next()
                .ok_or_else(|| {
                    Error::Codec(format!(
                        "line has too few attributes for `{}` (need {})",
                        schema.name(),
                        schema.arity()
                    ))
                })?
                .trim();
            values.push(parse_value(raw, attr.ty)?);
        }
        if fields.next().is_some() {
            return Err(Error::Codec(format!(
                "line has too many attributes for `{}`",
                schema.name()
            )));
        }
        schema.validate(&values)?;
        Ok(Some(Tuple::new(rel, ts, values)))
    }

    /// Read every tuple from a buffered source, in order. Fails on the
    /// first malformed line (with its 1-based line number in the error).
    pub fn read_all<R: BufRead>(&self, reader: R) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| Error::Codec(format!("io error: {e}")))?;
            match self.parse_line(&line) {
                Ok(Some(t)) => out.push(t),
                Ok(None) => {}
                Err(e) => return Err(Error::Codec(format!("line {}: {e}", i + 1))),
            }
        }
        Ok(out)
    }
}

fn parse_value(raw: &str, ty: ValueType) -> Result<Value> {
    if raw == "\\N" {
        return Ok(Value::Null);
    }
    Ok(match ty {
        ValueType::Int => {
            Value::Int(raw.parse().map_err(|e| Error::Codec(format!("bad int `{raw}`: {e}")))?)
        }
        ValueType::Float => {
            Value::Float(raw.parse().map_err(|e| Error::Codec(format!("bad float `{raw}`: {e}")))?)
        }
        ValueType::Bool => match raw {
            "true" | "1" => Value::Bool(true),
            "false" | "0" => Value::Bool(false),
            other => return Err(Error::Codec(format!("bad bool `{other}`"))),
        },
        ValueType::Str => Value::Str(raw.to_owned()),
    })
}

/// Render one tuple as a line in the same format the reader accepts.
pub fn tuple_to_line(t: &Tuple) -> String {
    let mut out = format!("{},{}", t.rel(), t.ts());
    for v in t.values() {
        out.push(',');
        match v {
            Value::Null => out.push_str("\\N"),
            Value::Str(s) => out.push_str(s),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&f.to_string()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out
}

/// Writes join results as lines `ts,<r fields>|<s fields>`.
#[derive(Debug)]
pub struct ResultWriter<W: Write> {
    sink: W,
    written: u64,
}

impl<W: Write> ResultWriter<W> {
    /// Wrap a sink.
    pub fn new(sink: W) -> ResultWriter<W> {
        ResultWriter { sink, written: 0 }
    }

    /// Write one result line.
    pub fn write(&mut self, result: &JoinResult) -> Result<()> {
        let r = tuple_to_line(&result.r);
        let s = tuple_to_line(&result.s);
        writeln!(self.sink, "{},{r}|{s}", result.ts)
            .map_err(|e| Error::Codec(format!("io error: {e}")))?;
        self.written += 1;
        Ok(())
    }

    /// Results written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the sink.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush().map_err(|e| Error::Codec(format!("io error: {e}")))?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(
                "orders",
                vec![("id", ValueType::Int), ("amount", ValueType::Float), ("who", ValueType::Str)],
            )
            .unwrap(),
            Schema::new("payments", vec![("id", ValueType::Int), ("ok", ValueType::Bool)]).unwrap(),
        )
    }

    #[test]
    fn parses_typed_lines_per_relation() {
        let (r, s) = schemas();
        let reader = CsvTupleReader::new(r, s);
        let t = reader.parse_line("R,100,7,9.5,alice").unwrap().unwrap();
        assert_eq!(t.rel(), Rel::R);
        assert_eq!(t.ts(), 100);
        assert_eq!(t.values(), &[Value::Int(7), Value::Float(9.5), Value::Str("alice".into())]);
        let t = reader.parse_line("S,101,7,true").unwrap().unwrap();
        assert_eq!(t.rel(), Rel::S);
        assert_eq!(t.get(1), Some(&Value::Bool(true)));
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let (r, s) = schemas();
        let reader = CsvTupleReader::new(r, s);
        assert!(reader.parse_line("").unwrap().is_none());
        assert!(reader.parse_line("   ").unwrap().is_none());
        assert!(reader.parse_line("# comment").unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_lines_with_detail() {
        let (r, s) = schemas();
        let reader = CsvTupleReader::new(r, s);
        for bad in [
            "X,1,2,3.0,a",       // bad relation
            "R,notanum,2,3.0,a", // bad ts
            "R,1,two,3.0,a",     // bad int
            "R,1,2,3.0",         // too few
            "R,1,2,3.0,a,extra", // too many
            "S,1,2,maybe",       // bad bool
        ] {
            assert!(reader.parse_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn nulls_roundtrip() {
        let (r, s) = schemas();
        let reader = CsvTupleReader::new(r, s);
        let t = reader.parse_line("R,5,\\N,\\N,\\N").unwrap().unwrap();
        assert!(t.values().iter().all(|v| *v == Value::Null));
        let line = tuple_to_line(&t);
        let back = reader.parse_line(&line).unwrap().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn read_all_reports_line_numbers() {
        let (r, s) = schemas();
        let reader = CsvTupleReader::new(r, s);
        let data = "R,1,1,1.0,a\n# comment\nS,2,1,true\nR,3,broken,1.0,a\n";
        let err = reader.read_all(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        let ok = reader.read_all("R,1,1,1.0,a\nS,2,1,true\n".as_bytes()).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn tuple_line_roundtrip() {
        let (r_schema, s_schema) = schemas();
        let reader = CsvTupleReader::new(r_schema, s_schema);
        let t = Tuple::new(
            Rel::R,
            77,
            vec![Value::Int(-3), Value::Float(2.25), Value::Str("bob".into())],
        );
        let back = reader.parse_line(&tuple_to_line(&t)).unwrap().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn result_writer_formats_pairs() {
        let r = Tuple::new(Rel::R, 1, vec![Value::Int(5)]);
        let s = Tuple::new(Rel::S, 2, vec![Value::Int(5)]);
        let result = JoinResult::of(r, s);
        let mut w = ResultWriter::new(Vec::new());
        w.write(&result).unwrap();
        assert_eq!(w.written(), 1);
        let bytes = w.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "2,R,1,5|S,2,5\n");
    }
}
