//! Per-pod resource meters and the utilization pipeline.

use bistream_types::metrics::{Counter, Gauge};
use bistream_types::registry::MetricsRegistry;
use bistream_types::time::Ts;
use serde::Serialize;
use std::sync::Arc;

/// The resource account of one pod. Engine units charge CPU-µs and set
/// their live memory; the autoscaler's metrics pipeline reads both.
#[derive(Debug, Default)]
pub struct ResourceMeter {
    /// Cumulative busy CPU time in microseconds.
    cpu_busy_us: Arc<Counter>,
    /// Live memory in bytes.
    memory_bytes: Arc<Gauge>,
}

impl ResourceMeter {
    /// A fresh meter, shared.
    pub fn shared() -> Arc<ResourceMeter> {
        Arc::new(ResourceMeter::default())
    }

    /// Expose this meter's primitives in `registry` as
    /// `bistream_pod_cpu_busy_us_total{labels}` and
    /// `bistream_pod_memory_bytes{labels}` — the pod-label registration the
    /// unified scrape needs. Idempotent for a given label set.
    pub fn register_into(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.register_counter(
            bistream_types::metric_names::POD_CPU_BUSY_US_TOTAL,
            labels,
            &self.cpu_busy_us,
        );
        registry.register_gauge(
            bistream_types::metric_names::POD_MEMORY_BYTES,
            labels,
            &self.memory_bytes,
        );
    }

    /// Charge `us` microseconds of CPU (fractions accumulate via rounding
    /// at the call site granularity; costs below 1µs should be batched by
    /// the caller).
    #[inline]
    pub fn charge_cpu_us(&self, us: f64) {
        self.cpu_busy_us.add(us.round() as u64);
    }

    /// Cumulative busy-µs so far.
    pub fn cpu_busy_us(&self) -> u64 {
        self.cpu_busy_us.get()
    }

    /// Overwrite the live-memory reading.
    pub fn set_memory_bytes(&self, bytes: u64) {
        self.memory_bytes.set(bytes);
    }

    /// Current live-memory reading.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes.get()
    }
}

/// One pod's utilization sample for a control period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PodSample {
    /// Busy fraction of one vCPU over the period (1.0 = 100 %; may exceed
    /// 1.0 when a pod is oversubscribed — the sim has no hard CPU cap,
    /// matching how the thesis reports ~145 % initial utilization).
    pub cpu_utilization: f64,
    /// Live memory at sampling time.
    pub memory_bytes: u64,
}

/// Converts cumulative busy counters into per-period utilizations — the
/// Heapster/metrics-server role.
///
/// The tracker remembers each pod's counter at the previous scrape; pods
/// are identified positionally by the caller (the deployment), and newly
/// added pods start from their current counter (first sample 0 utilization
/// rather than a spurious spike).
#[derive(Debug, Default)]
pub struct UtilizationTracker {
    last_scrape: Option<Ts>,
    last_busy: Vec<(usize, u64)>, // (pod_id, busy_us at last scrape)
}

impl UtilizationTracker {
    /// A fresh tracker.
    pub fn new() -> UtilizationTracker {
        UtilizationTracker::default()
    }

    /// Scrape the given pods (stable ids + meters) at time `now`,
    /// producing one sample per pod. The first scrape (and a pod's first
    /// appearance) reports zero utilization.
    pub fn scrape(&mut self, now: Ts, pods: &[(usize, &ResourceMeter)]) -> Vec<PodSample> {
        let dt_us = self.last_scrape.map(|t| now.saturating_sub(t) * 1_000).unwrap_or(0);
        let mut samples = Vec::with_capacity(pods.len());
        let mut new_busy = Vec::with_capacity(pods.len());
        for &(id, meter) in pods {
            let busy_now = meter.cpu_busy_us();
            let prev = self.last_busy.iter().find(|(pid, _)| *pid == id).map(|(_, b)| *b);
            let cpu = match (prev, dt_us) {
                (Some(prev_busy), dt) if dt > 0 => {
                    busy_now.saturating_sub(prev_busy) as f64 / dt as f64
                }
                _ => 0.0,
            };
            samples.push(PodSample { cpu_utilization: cpu, memory_bytes: meter.memory_bytes() });
            new_busy.push((id, busy_now));
        }
        self.last_busy = new_busy;
        self.last_scrape = Some(now);
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_reads() {
        let m = ResourceMeter::default();
        m.charge_cpu_us(2.6);
        m.charge_cpu_us(2.6);
        assert_eq!(m.cpu_busy_us(), 6, "rounded per call");
        m.set_memory_bytes(1_024);
        assert_eq!(m.memory_bytes(), 1_024);
    }

    #[test]
    fn register_into_exposes_pod_series() {
        let m = ResourceMeter::shared();
        let reg = MetricsRegistry::new();
        m.register_into(&reg, &[("pod", "R0")]);
        m.charge_cpu_us(1_000.0);
        m.set_memory_bytes(64);
        let snap = reg.scrape(0);
        let labels: &[(&str, &str)] = &[("pod", "R0")];
        assert_eq!(
            snap.counter(bistream_types::metric_names::POD_CPU_BUSY_US_TOTAL, labels),
            Some(1_000)
        );
        assert_eq!(snap.gauge(bistream_types::metric_names::POD_MEMORY_BYTES, labels), Some(64));
    }

    #[test]
    fn first_scrape_is_zero_then_deltas() {
        let m = ResourceMeter::shared();
        let mut t = UtilizationTracker::new();
        m.charge_cpu_us(500_000.0); // 0.5s busy before first scrape
        let s0 = t.scrape(1_000, &[(0, &m)]);
        assert_eq!(s0[0].cpu_utilization, 0.0, "no baseline yet");
        // Over the next second the pod burns 0.8s of CPU → 80 %.
        m.charge_cpu_us(800_000.0);
        let s1 = t.scrape(2_000, &[(0, &m)]);
        assert!((s1[0].cpu_utilization - 0.8).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_exceeds_one() {
        let m = ResourceMeter::shared();
        let mut t = UtilizationTracker::new();
        t.scrape(0, &[(0, &m)]);
        m.charge_cpu_us(1_450_000.0); // 1.45 s busy in a 1 s period
        let s = t.scrape(1_000, &[(0, &m)]);
        assert!((s[0].cpu_utilization - 1.45).abs() < 1e-9);
    }

    #[test]
    fn new_pod_starts_cold() {
        let a = ResourceMeter::shared();
        let b = ResourceMeter::shared();
        let mut t = UtilizationTracker::new();
        t.scrape(0, &[(0, &a)]);
        a.charge_cpu_us(100_000.0);
        b.charge_cpu_us(900_000.0); // pre-existing busy on the new pod
        let s = t.scrape(1_000, &[(0, &a), (1, &b)]);
        assert!(s[0].cpu_utilization > 0.0);
        assert_eq!(s[1].cpu_utilization, 0.0, "no baseline for pod 1 yet");
        b.charge_cpu_us(500_000.0);
        let s = t.scrape(2_000, &[(0, &a), (1, &b)]);
        assert!((s[1].cpu_utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn removed_pod_forgotten() {
        let a = ResourceMeter::shared();
        let b = ResourceMeter::shared();
        let mut t = UtilizationTracker::new();
        t.scrape(0, &[(0, &a), (1, &b)]);
        let s = t.scrape(1_000, &[(0, &a)]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn memory_sampled_point_in_time() {
        let m = ResourceMeter::shared();
        let mut t = UtilizationTracker::new();
        m.set_memory_bytes(10);
        let s = t.scrape(0, &[(0, &m)]);
        assert_eq!(s[0].memory_bytes, 10);
        m.set_memory_bytes(99);
        let s = t.scrape(1, &[(0, &m)]);
        assert_eq!(s[0].memory_bytes, 99);
    }
}
