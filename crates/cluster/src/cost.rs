//! The CPU cost model: how many microseconds of virtual CPU each engine
//! operation charges to its pod's meter.
//!
//! The simulator cannot measure real CPU (it processes a 60-minute virtual
//! experiment in seconds), so joiners charge their meter per operation
//! using these constants. The defaults were calibrated against the live
//! threaded runtime on the development machine (release build, equi-join,
//! see `bistream-bench`'s `index_bench`/`router_bench`): they reproduce the
//! property the experiments rely on — utilization proportional to tuple
//! rate × per-tuple work — and their absolute scale sets how many
//! tuples/second saturate one pod, which E1 tunes to match the thesis's
//! "300 t/s ≈ 145 % of one joiner" operating point.

use serde::{Deserialize, Serialize};

/// Per-operation CPU charges in microseconds of virtual CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Deserialising + dispatching one incoming message at a unit.
    pub ingest_us: f64,
    /// Inserting one tuple into the chained index (store branch).
    pub insert_us: f64,
    /// Examining one key-matched candidate during a probe.
    pub probe_candidate_us: f64,
    /// Fixed cost of initiating a probe (plan construction, chain walk).
    pub probe_base_us: f64,
    /// Emitting one join result.
    pub emit_us: f64,
    /// Expiring one archived sub-index (O(1) dereference).
    pub expire_subindex_us: f64,
    /// Evicting one tuple individually (naive index only).
    pub expire_tuple_us: f64,
    /// Router: routing decision + publish of one tuple copy.
    pub route_copy_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ingest_us: 2.0,
            insert_us: 3.0,
            probe_candidate_us: 0.8,
            probe_base_us: 2.0,
            emit_us: 1.5,
            expire_subindex_us: 5.0,
            expire_tuple_us: 2.5,
            route_copy_us: 1.2,
        }
    }
}

impl CostModel {
    /// The model used by E1/E2 to land on the thesis's operating point: a
    /// single joiner at 300 input t/s per relation (10-minute window,
    /// uniform keys) shows ≈ 145 % CPU, so the autoscaler's first action
    /// is a scale-out — matching Fig. 20's opening transient.
    pub fn thesis_operating_point() -> CostModel {
        CostModel {
            // Heavier per-tuple costs than default: the thesis pods were
            // single-vCPU JVM containers doing JSON + AMQP framing.
            ingest_us: 700.0,
            insert_us: 1_200.0,
            probe_candidate_us: 250.0,
            probe_base_us: 500.0,
            emit_us: 400.0,
            expire_subindex_us: 150.0,
            expire_tuple_us: 100.0,
            route_copy_us: 400.0,
        }
    }

    /// CPU charge for a probe that examined `candidates` and emitted
    /// `matches` results.
    #[inline]
    pub fn probe_cost_us(&self, candidates: usize, matches: usize) -> f64 {
        self.probe_base_us
            + self.probe_candidate_us * candidates as f64
            + self.emit_us * matches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_cost_composition() {
        let m = CostModel::default();
        let c = m.probe_cost_us(10, 2);
        assert_eq!(c, 2.0 + 8.0 + 3.0);
    }

    #[test]
    fn thesis_point_saturates_one_pod_at_300tps() {
        // Rough arithmetic check of the calibration claim: per incoming
        // tuple a joiner pays ingest + insert (store) or ingest + probe
        // (join). At 300 t/s per relation a single joiner per side sees
        // 300 stores + 300 probes per second.
        let m = CostModel::thesis_operating_point();
        let per_second_us =
            300.0 * (m.ingest_us + m.insert_us) + 300.0 * (m.ingest_us + m.probe_cost_us(5, 1));
        let utilization = per_second_us / 1_000_000.0;
        assert!(
            utilization > 1.2 && utilization < 1.8,
            "one joiner at 300t/s should sit ≈145% busy, got {utilization}"
        );
    }
}
