//! The Horizontal Pod Autoscaler control loop, reproduced from the
//! Kubernetes algorithm the thesis's experiments used
//! (`autoscaling/v2alpha1` semantics):
//!
//! 1. every `period`, scrape the per-pod metric and take the mean;
//! 2. `desired = ceil(current_replicas × mean / target)`;
//! 3. ignore the change if `|mean/target − 1| ≤ tolerance` (dead-band);
//! 4. clamp to `[min, max]`;
//! 5. scale up immediately; scale *down* only to the **maximum** desired
//!    value observed over the stabilization window (prevents flapping on
//!    transient dips).

use crate::meter::PodSample;
use bistream_types::time::{Ts, MINUTE};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What the autoscaler targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricTarget {
    /// Mean CPU utilization across pods, as a fraction (0.8 = 80 %).
    CpuUtilization(f64),
    /// Mean live memory across pods, as a fraction of `limit_bytes`
    /// (`0.85` with a 612 MiB limit reproduces the thesis's 85 % ≈ 520 MB
    /// trigger).
    MemoryUtilization {
        /// Target fraction of the limit.
        fraction: f64,
        /// Per-pod memory limit in bytes.
        limit_bytes: u64,
    },
}

/// Autoscaler configuration (one per deployment).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HpaConfig {
    /// Minimum replicas.
    pub min_replicas: usize,
    /// Maximum replicas.
    pub max_replicas: usize,
    /// The metric and its target value.
    pub target: MetricTarget,
    /// Control loop period in ms (Kubernetes default: 30 s).
    pub period_ms: Ts,
    /// Dead-band around the target ratio (Kubernetes default: 0.1).
    pub tolerance: f64,
    /// Scale-down stabilization window in ms (Kubernetes default: 5 min).
    pub scale_down_stabilization_ms: Ts,
}

impl HpaConfig {
    /// The configuration of experiment E1 (thesis Fig. 20): CPU target
    /// 80 %, 1–3 joiners, 30 s loop.
    pub fn thesis_cpu() -> HpaConfig {
        HpaConfig {
            min_replicas: 1,
            max_replicas: 3,
            target: MetricTarget::CpuUtilization(0.80),
            period_ms: 30_000,
            tolerance: 0.1,
            scale_down_stabilization_ms: 5 * MINUTE,
        }
    }

    /// The configuration of experiment E2 (thesis Fig. 21): memory target
    /// 85 % of a 612 MB limit (≈ 520 MB trigger), 1–3 joiners.
    pub fn thesis_memory() -> HpaConfig {
        HpaConfig {
            min_replicas: 1,
            max_replicas: 3,
            target: MetricTarget::MemoryUtilization {
                fraction: 0.85,
                limit_bytes: 612 * 1024 * 1024,
            },
            period_ms: 30_000,
            tolerance: 0.1,
            scale_down_stabilization_ms: 5 * MINUTE,
        }
    }
}

/// One autoscaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HpaDecision {
    /// Time of the decision.
    pub at: Ts,
    /// Mean metric value observed (utilization fraction).
    pub observed: f64,
    /// Replicas before.
    pub current: usize,
    /// Replicas decided.
    pub desired: usize,
}

/// The autoscaler controller state.
#[derive(Debug)]
pub struct Hpa {
    config: HpaConfig,
    last_run: Option<Ts>,
    /// `(ts, desired)` recommendations within the stabilization window.
    recommendations: VecDeque<(Ts, usize)>,
    decisions: Vec<HpaDecision>,
}

impl Hpa {
    /// A controller with the given configuration.
    pub fn new(config: HpaConfig) -> Hpa {
        assert!(config.min_replicas >= 1, "min_replicas must be >= 1");
        assert!(config.max_replicas >= config.min_replicas);
        Hpa { config, last_run: None, recommendations: VecDeque::new(), decisions: Vec::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &HpaConfig {
        &self.config
    }

    /// All decisions taken so far (for experiment reporting).
    pub fn decisions(&self) -> &[HpaDecision] {
        &self.decisions
    }

    /// Is a control-loop run due at `now`?
    pub fn due(&self, now: Ts) -> bool {
        match self.last_run {
            None => true,
            Some(t) => now.saturating_sub(t) >= self.config.period_ms,
        }
    }

    /// Run one control-loop iteration. Returns the replica count the
    /// deployment should have (which may equal `current`).
    ///
    /// `samples` are the current pods' metric samples; with no pods (or no
    /// samples) the controller holds.
    pub fn evaluate(&mut self, now: Ts, current: usize, samples: &[PodSample]) -> usize {
        self.last_run = Some(now);
        if current == 0 || samples.is_empty() {
            return current.max(self.config.min_replicas);
        }

        let mean = match self.config.target {
            MetricTarget::CpuUtilization(_) => {
                samples.iter().map(|s| s.cpu_utilization).sum::<f64>() / samples.len() as f64
            }
            MetricTarget::MemoryUtilization { limit_bytes, .. } => {
                let mean_bytes = samples.iter().map(|s| s.memory_bytes as f64).sum::<f64>()
                    / samples.len() as f64;
                mean_bytes / limit_bytes as f64
            }
        };
        let target = match self.config.target {
            MetricTarget::CpuUtilization(t) => t,
            MetricTarget::MemoryUtilization { fraction, .. } => fraction,
        };

        let ratio = mean / target;
        let mut desired = if (ratio - 1.0).abs() <= self.config.tolerance {
            current
        } else {
            (current as f64 * ratio).ceil() as usize
        };
        desired = desired.clamp(self.config.min_replicas, self.config.max_replicas);

        // Stabilization: remember this recommendation, and for downscales
        // apply the max recommendation in the window.
        self.recommendations.push_back((now, desired));
        let horizon = now.saturating_sub(self.config.scale_down_stabilization_ms);
        while matches!(self.recommendations.front(), Some(&(t, _)) if t < horizon) {
            self.recommendations.pop_front();
        }
        let stabilized = if desired < current {
            self.recommendations.iter().map(|&(_, d)| d).max().unwrap_or(desired).min(current)
        // stabilization never causes an up-scale
        } else {
            desired
        };

        self.decisions.push(HpaDecision { at: now, observed: mean, current, desired: stabilized });
        stabilized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_samples(utils: &[f64]) -> Vec<PodSample> {
        utils.iter().map(|&u| PodSample { cpu_utilization: u, memory_bytes: 0 }).collect()
    }

    fn cfg() -> HpaConfig {
        HpaConfig {
            min_replicas: 1,
            max_replicas: 5,
            target: MetricTarget::CpuUtilization(0.8),
            period_ms: 30_000,
            tolerance: 0.1,
            scale_down_stabilization_ms: 300_000,
        }
    }

    #[test]
    fn scales_up_on_high_utilization() {
        let mut hpa = Hpa::new(cfg());
        // 145% on one pod: desired = ceil(1 × 1.45/0.8) = 2.
        assert_eq!(hpa.evaluate(0, 1, &cpu_samples(&[1.45])), 2);
    }

    #[test]
    fn dead_band_holds_steady() {
        let mut hpa = Hpa::new(cfg());
        // 0.85/0.8 = 1.0625 ≤ 1.1 → hold.
        assert_eq!(hpa.evaluate(0, 2, &cpu_samples(&[0.9, 0.8])), 2);
    }

    #[test]
    fn clamps_to_bounds() {
        let mut hpa = Hpa::new(cfg());
        assert_eq!(hpa.evaluate(0, 5, &cpu_samples(&[10.0; 5])), 5, "max");
        let mut hpa = Hpa::new(cfg());
        // Very low load on 1 pod cannot go below min=1 (also needs the
        // stabilization window to pass, but the clamp already binds).
        assert_eq!(hpa.evaluate(0, 1, &cpu_samples(&[0.0])), 1, "min");
    }

    #[test]
    fn scale_down_waits_for_stabilization() {
        let mut hpa = Hpa::new(cfg());
        // t=0: high load pushes recommendation 3.
        assert_eq!(hpa.evaluate(0, 3, &cpu_samples(&[0.8, 0.8, 0.8])), 3);
        // t=30s: load collapses; desired=1 but window still holds 3.
        assert_eq!(hpa.evaluate(30_000, 3, &cpu_samples(&[0.1, 0.1, 0.1])), 3);
        // Low readings keep coming; once the 5-min window drains of the
        // high recommendation, the downscale lands.
        let current = 3;
        let mut t = 60_000;
        let mut landed_at = None;
        while t <= 600_000 {
            let d = hpa.evaluate(t, current, &cpu_samples(&vec![0.1; current]));
            if d < current {
                landed_at = Some(t);
                break;
            }
            t += 30_000;
        }
        let landed = landed_at.expect("downscale eventually lands");
        assert!(landed >= 300_000, "not before the stabilization window: {landed}");
    }

    #[test]
    fn scale_up_is_immediate_even_inside_window() {
        let mut hpa = Hpa::new(cfg());
        assert_eq!(hpa.evaluate(0, 1, &cpu_samples(&[0.1])), 1);
        assert_eq!(hpa.evaluate(30_000, 1, &cpu_samples(&[2.0])), 3, "ceil(1×2.5)=3");
    }

    #[test]
    fn memory_target_uses_fraction_of_limit() {
        let cfg = HpaConfig {
            target: MetricTarget::MemoryUtilization { fraction: 0.85, limit_bytes: 1_000 },
            ..cfg()
        };
        let mut hpa = Hpa::new(cfg);
        let hot = vec![PodSample { cpu_utilization: 0.0, memory_bytes: 950 }];
        // ratio = 0.95/0.85 ≈ 1.12 > 1.1 → scale to ceil(1×1.12)=2.
        assert_eq!(hpa.evaluate(0, 1, &hot), 2);
        let cool = vec![PodSample { cpu_utilization: 0.0, memory_bytes: 800 }];
        // 0.8/0.85 ≈ 0.94 → inside dead-band → hold.
        assert_eq!(hpa.evaluate(30_000, 1, &cool), 1);
    }

    #[test]
    fn due_respects_period() {
        let mut hpa = Hpa::new(cfg());
        assert!(hpa.due(0));
        hpa.evaluate(0, 1, &cpu_samples(&[0.8]));
        assert!(!hpa.due(10_000));
        assert!(hpa.due(30_000));
    }

    #[test]
    fn decisions_are_recorded() {
        let mut hpa = Hpa::new(cfg());
        hpa.evaluate(0, 1, &cpu_samples(&[1.6]));
        let d = &hpa.decisions()[0];
        assert_eq!(d.current, 1);
        assert_eq!(d.desired, 2);
        assert!((d.observed - 1.6).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_hold_at_min() {
        let mut hpa = Hpa::new(cfg());
        assert_eq!(hpa.evaluate(0, 0, &[]), 1);
        assert_eq!(hpa.evaluate(0, 3, &[]), 3);
    }
}
