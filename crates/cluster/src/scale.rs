//! The glue between the autoscaler and whatever it scales.

use crate::hpa::Hpa;
use crate::meter::{PodSample, ResourceMeter, UtilizationTracker};
use bistream_types::error::Result;
use bistream_types::time::Ts;
use serde::Serialize;

/// Anything whose replica count the autoscaler may change — in this
/// workspace, one side of the biclique engine (its joiner deployment).
pub trait ScaleTarget {
    /// Current number of replicas.
    fn replicas(&self) -> usize;

    /// Change the replica count to `n` (adding or retiring units). The
    /// engine guarantees no data migration; see `bistream-core::scale`.
    fn scale_to(&mut self, n: usize) -> Result<()>;

    /// Stable pod ids and their resource meters, for metric scraping.
    /// Ids must be unique over the deployment's lifetime (retired pods'
    /// ids are not reused) so the tracker can tell a new pod from an old.
    fn pod_meters(&self) -> Vec<(usize, std::sync::Arc<ResourceMeter>)>;
}

/// One row of the autoscaling timeline (experiment output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScaleEvent {
    /// When.
    pub at: Ts,
    /// Mean metric observed (fraction).
    pub observed: f64,
    /// Replicas before the decision.
    pub before: usize,
    /// Replicas after the decision.
    pub after: usize,
}

/// A deployment wrapped with its autoscaler and metrics pipeline.
///
/// Drive it by calling [`Autoscaled::tick`] from the simulation loop; it
/// scrapes, evaluates the HPA when due, applies scaling decisions to the
/// target, and records the timeline.
pub struct Autoscaled<T: ScaleTarget> {
    target: T,
    hpa: Hpa,
    tracker: UtilizationTracker,
    timeline: Vec<ScaleEvent>,
    last_samples: Vec<PodSample>,
}

impl<T: ScaleTarget> Autoscaled<T> {
    /// Wrap `target` under `hpa`.
    pub fn new(target: T, hpa: Hpa) -> Autoscaled<T> {
        Autoscaled {
            target,
            hpa,
            tracker: UtilizationTracker::new(),
            timeline: Vec::new(),
            last_samples: Vec::new(),
        }
    }

    /// Access the scaled target.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Mutable access (the driver still feeds tuples through the target).
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// The autoscaling timeline so far.
    pub fn timeline(&self) -> &[ScaleEvent] {
        &self.timeline
    }

    /// Most recent per-pod samples (for experiment time series).
    pub fn last_samples(&self) -> &[PodSample] {
        &self.last_samples
    }

    /// Run the metrics + control loop if due at `now`. Returns the scale
    /// event if the replica count changed.
    pub fn tick(&mut self, now: Ts) -> Result<Option<ScaleEvent>> {
        if !self.hpa.due(now) {
            return Ok(None);
        }
        let meters = self.target.pod_meters();
        let borrowed: Vec<(usize, &ResourceMeter)> =
            meters.iter().map(|(id, m)| (*id, m.as_ref())).collect();
        let samples = self.tracker.scrape(now, &borrowed);
        self.last_samples = samples.clone();
        let current = self.target.replicas();
        let desired = self.hpa.evaluate(now, current, &samples);
        let observed = self.hpa.decisions().last().map(|d| d.observed).unwrap_or(0.0);
        if desired != current {
            self.target.scale_to(desired)?;
            let ev = ScaleEvent { at: now, observed, before: current, after: desired };
            self.timeline.push(ev);
            return Ok(Some(ev));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpa::{HpaConfig, MetricTarget};
    use std::sync::Arc;

    /// A fake deployment whose pods burn CPU at a configurable rate.
    struct FakeDeployment {
        pods: Vec<(usize, Arc<ResourceMeter>)>,
        next_id: usize,
    }

    impl FakeDeployment {
        fn new(n: usize) -> FakeDeployment {
            let mut d = FakeDeployment { pods: Vec::new(), next_id: 0 };
            d.scale_to(n).unwrap();
            d
        }

        fn burn(&self, us_per_pod: f64) {
            for (_, m) in &self.pods {
                m.charge_cpu_us(us_per_pod);
            }
        }
    }

    impl ScaleTarget for FakeDeployment {
        fn replicas(&self) -> usize {
            self.pods.len()
        }
        fn scale_to(&mut self, n: usize) -> Result<()> {
            while self.pods.len() < n {
                self.pods.push((self.next_id, ResourceMeter::shared()));
                self.next_id += 1;
            }
            self.pods.truncate(n);
            Ok(())
        }
        fn pod_meters(&self) -> Vec<(usize, Arc<ResourceMeter>)> {
            self.pods.clone()
        }
    }

    fn hpa() -> Hpa {
        Hpa::new(HpaConfig {
            min_replicas: 1,
            max_replicas: 3,
            target: MetricTarget::CpuUtilization(0.8),
            period_ms: 30_000,
            tolerance: 0.1,
            scale_down_stabilization_ms: 120_000,
        })
    }

    #[test]
    fn overload_triggers_scale_out_then_calm_scales_in() {
        let mut auto = Autoscaled::new(FakeDeployment::new(1), hpa());
        // Baseline scrape.
        assert!(auto.tick(0).unwrap().is_none());
        // Pod burns 145 % for 30 s.
        auto.target().burn(1.45 * 30_000_000.0 / 1_000.0 * 1_000.0);
        let ev = auto.tick(30_000).unwrap().expect("scale out");
        assert_eq!((ev.before, ev.after), (1, 2));
        assert_eq!(auto.target().replicas(), 2);

        // Quiet pods: eventually scale back down after stabilization.
        let mut t = 60_000;
        let mut scaled_down = None;
        while t <= 400_000 {
            if let Some(ev) = auto.tick(t).unwrap() {
                if ev.after < ev.before {
                    scaled_down = Some(ev);
                    break;
                }
            }
            t += 30_000;
        }
        let ev = scaled_down.expect("scale in lands");
        assert!(ev.at >= 120_000 + 30_000);
        assert_eq!(auto.target().replicas(), ev.after);
        assert_eq!(auto.timeline().len(), 2);
    }

    #[test]
    fn tick_respects_period() {
        let mut auto = Autoscaled::new(FakeDeployment::new(1), hpa());
        auto.tick(0).unwrap();
        auto.target().burn(1e9);
        assert!(auto.tick(10_000).unwrap().is_none(), "not due yet");
        assert!(auto.tick(30_000).unwrap().is_some());
    }
}
