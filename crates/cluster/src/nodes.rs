//! The node pool: the fixed fleet of VMs pods are scheduled onto.
//!
//! The thesis ran on GKE's free tier — eight `n1-standard-1` VMs (1 vCPU,
//! 3.75 GB each) with cluster autoscaling off — and that quota is *why*
//! its experiments cap at three joiners per side: the pods for two joiner
//! deployments, the router deployment and the broker must all fit.
//! This module models that constraint: first-fit scheduling of pod
//! resource requests onto a fixed pool, so experiments can derive an
//! honest `max_replicas` from infrastructure instead of hard-coding it.

use bistream_types::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Resources offered by one node (or requested by one pod).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    /// CPU in millicores (1000 = one vCPU).
    pub cpu_millis: u64,
    /// Memory in bytes.
    pub memory_bytes: u64,
}

impl Resources {
    /// `n1-standard-1`: 1 vCPU, 3.75 GB.
    pub const N1_STANDARD_1: Resources =
        Resources { cpu_millis: 1_000, memory_bytes: 3_750 * 1024 * 1024 };

    fn fits(self, within: Resources) -> bool {
        self.cpu_millis <= within.cpu_millis && self.memory_bytes <= within.memory_bytes
    }

    fn minus(self, used: Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis.saturating_sub(used.cpu_millis),
            memory_bytes: self.memory_bytes.saturating_sub(used.memory_bytes),
        }
    }

    fn plus(self, other: Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis + other.cpu_millis,
            memory_bytes: self.memory_bytes + other.memory_bytes,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    capacity: Resources,
    allocated: Resources,
    pods: Vec<String>,
}

impl Node {
    fn free(&self) -> Resources {
        self.capacity.minus(self.allocated)
    }
}

/// A fixed pool of nodes with first-fit pod placement.
#[derive(Debug, Clone)]
pub struct NodePool {
    nodes: Vec<Node>,
}

impl NodePool {
    /// A homogeneous pool of `n` nodes.
    pub fn homogeneous(n: usize, capacity: Resources) -> NodePool {
        NodePool {
            nodes: (0..n)
                .map(|_| Node {
                    capacity,
                    allocated: Resources { cpu_millis: 0, memory_bytes: 0 },
                    pods: Vec::new(),
                })
                .collect(),
        }
    }

    /// The thesis's cluster: 8 × `n1-standard-1`.
    pub fn thesis_cluster() -> NodePool {
        NodePool::homogeneous(8, Resources::N1_STANDARD_1)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the pool has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Schedule a named pod with `request` onto the first node with room;
    /// returns the node index.
    ///
    /// # Errors
    /// [`Error::Scaling`] when no node can host the request (the
    /// "unschedulable pod" state Kubernetes reports).
    pub fn schedule(&mut self, pod: impl Into<String>, request: Resources) -> Result<usize> {
        let pod = pod.into();
        if self.nodes.iter().any(|n| n.pods.contains(&pod)) {
            return Err(Error::Scaling(format!("pod `{pod}` is already scheduled")));
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if request.fits(node.free()) {
                node.allocated = node.allocated.plus(request);
                node.pods.push(pod);
                return Ok(i);
            }
        }
        Err(Error::Scaling(format!(
            "pod `{pod}` is unschedulable: no node has {}m CPU / {} B free",
            request.cpu_millis, request.memory_bytes
        )))
    }

    /// Remove a pod by name, freeing its resources. Returns true if it
    /// was scheduled.
    pub fn evict(&mut self, pod: &str, request: Resources) -> bool {
        for node in &mut self.nodes {
            if let Some(i) = node.pods.iter().position(|p| p == pod) {
                node.pods.swap_remove(i);
                node.allocated = node.allocated.minus(request);
                return true;
            }
        }
        false
    }

    /// How many *additional* pods of `request` the pool could accept —
    /// the infrastructure-derived cap an autoscaler's `max_replicas`
    /// should respect.
    pub fn max_schedulable(&self, request: Resources) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                let free = n.free();
                let by_cpu = free
                    .cpu_millis
                    .checked_div(request.cpu_millis)
                    .map(|n| n as usize)
                    .unwrap_or(usize::MAX);
                let by_mem = free
                    .memory_bytes
                    .checked_div(request.memory_bytes)
                    .map(|n| n as usize)
                    .unwrap_or(usize::MAX);
                by_cpu.min(by_mem)
            })
            .sum()
    }

    /// Pods currently on each node (placement view).
    pub fn pods_per_node(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.pods.len()).collect()
    }

    /// Pool-wide CPU allocation fraction.
    pub fn cpu_allocation(&self) -> f64 {
        let cap: u64 = self.nodes.iter().map(|n| n.capacity.cpu_millis).sum();
        let used: u64 = self.nodes.iter().map(|n| n.allocated.cpu_millis).sum();
        if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POD: Resources = Resources { cpu_millis: 900, memory_bytes: 512 * 1024 * 1024 };

    #[test]
    fn first_fit_packs_in_order() {
        let mut pool = NodePool::homogeneous(3, Resources::N1_STANDARD_1);
        assert_eq!(pool.schedule("a", POD).unwrap(), 0);
        // 100m left on node 0: next pod goes to node 1.
        assert_eq!(pool.schedule("b", POD).unwrap(), 1);
        assert_eq!(pool.pods_per_node(), vec![1, 1, 0]);
    }

    #[test]
    fn unschedulable_when_full() {
        let mut pool = NodePool::homogeneous(1, Resources::N1_STANDARD_1);
        pool.schedule("a", POD).unwrap();
        let err = pool.schedule("b", POD).unwrap_err();
        assert!(err.to_string().contains("unschedulable"));
        // Eviction frees the slot.
        assert!(pool.evict("a", POD));
        assert!(!pool.evict("a", POD), "already gone");
        assert!(pool.schedule("b", POD).is_ok());
    }

    #[test]
    fn duplicate_pod_names_rejected() {
        let mut pool = NodePool::homogeneous(2, Resources::N1_STANDARD_1);
        pool.schedule("a", POD).unwrap();
        assert!(pool.schedule("a", POD).is_err());
    }

    #[test]
    fn thesis_quota_explains_the_pod_cap() {
        // The thesis ran 1 broker + 2 routers and scaled joiners 1–3 per
        // side on 8 single-vCPU nodes. With ~900m requests each node
        // hosts one pod, so after the 3 infrastructure pods only 5 joiner
        // slots remain — the free-tier quota the thesis names as the
        // reason its experiments were "significantly limited": both sides
        // cannot reach their 3-pod maximum simultaneously.
        let mut pool = NodePool::thesis_cluster();
        pool.schedule("rabbitmq", POD).unwrap();
        pool.schedule("router-0", POD).unwrap();
        pool.schedule("router-1", POD).unwrap();
        assert_eq!(pool.max_schedulable(POD), 5);
        for name in ["r-0", "r-1", "r-2", "s-0", "s-1"] {
            pool.schedule(format!("joiner-{name}"), POD).unwrap();
        }
        let err = pool.schedule("joiner-s-2", POD).unwrap_err();
        assert!(err.to_string().contains("unschedulable"));
        assert_eq!(pool.max_schedulable(POD), 0);
        assert!(pool.cpu_allocation() > 0.85);
        assert_eq!(pool.pods_per_node(), vec![1; 8]);
    }

    #[test]
    fn memory_binds_when_cpu_does_not() {
        let node = Resources { cpu_millis: 10_000, memory_bytes: 1024 };
        let mut pool = NodePool::homogeneous(1, node);
        let hungry = Resources { cpu_millis: 100, memory_bytes: 600 };
        assert_eq!(pool.max_schedulable(hungry), 1);
        pool.schedule("a", hungry).unwrap();
        assert!(pool.schedule("b", hungry).is_err());
    }
}
