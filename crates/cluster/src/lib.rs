//! The simulated elastic cluster — the substrate the thesis obtained from
//! Kubernetes on Google Container Engine and the paper from a Storm
//! cluster.
//!
//! The experiments need three things from "the cloud", and this crate
//! provides exactly those, nothing else:
//!
//! 1. **Resource accounting** ([`meter`], [`cost`]): each processing unit
//!    (pod) owns a [`meter::ResourceMeter`] it charges with CPU-µs per
//!    operation (via the calibrated [`cost::CostModel`]) and with the bytes
//!    of its live window state. This replaces cgroup accounting.
//! 2. **A metrics pipeline** ([`meter::UtilizationTracker`]): per control
//!    period, busy-time deltas become per-pod CPU utilization percentages —
//!    the role Heapster/metrics-server plays for the real HPA.
//! 3. **The Horizontal Pod Autoscaler** ([`hpa`]): the Kubernetes control
//!    loop, reproduced rule-for-rule — ratio scaling
//!    `desired = ceil(current · metric/target)`, a ±tolerance dead-band,
//!    min/max clamping, and a scale-down stabilization window.
//!
//! [`nodes`] adds the fixed VM fleet pods are placed onto (first-fit),
//! deriving the autoscaler's replica cap from infrastructure the way the
//! thesis's 8-vCPU free-tier quota did.
//!
//! The engine plugs in through [`scale::ScaleTarget`], so this crate knows
//! nothing about joins.

#![warn(missing_docs)]

pub mod cost;
pub mod hpa;
pub mod meter;
pub mod nodes;
pub mod scale;

pub use cost::CostModel;
pub use hpa::{Hpa, HpaConfig, MetricTarget};
pub use meter::{ResourceMeter, UtilizationTracker};
pub use nodes::{NodePool, Resources};
pub use scale::{Autoscaled, ScaleTarget};
