//! Property-based tests (proptest) over the core invariants:
//! value ordering laws, codec round-trips, window algebra, chained-index
//! equivalence with the naive index, reorder-buffer ordering, topic
//! matching, and Zipf sampler bounds.

use bistream::broker::pattern::topic_matches as pattern_matches;
use bistream::index::{ChainedIndex, IndexKind, NaiveWindowIndex};
use bistream::types::predicate::ProbePlan;
use bistream::types::punct::{Punctuation, Purpose, StreamMessage};
use bistream::types::rel::Rel;
use bistream::types::time::Ts;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
    ]
}

proptest! {
    /// Ord on Value is a total order: antisymmetric and transitive.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Greater && b.cmp(&c) != Greater {
            prop_assert_ne!(a.cmp(&c), Greater);
        }
    }

    /// Value wire codec round-trips every value (NaN canonicalised).
    #[test]
    fn value_codec_roundtrip(v in arb_value()) {
        let mut buf = bytes::BytesMut::new();
        v.encode(&mut buf);
        let mut wire = buf.freeze();
        let back = Value::decode(&mut wire).unwrap();
        prop_assert_eq!(back.cmp(&v), std::cmp::Ordering::Equal);
        prop_assert_eq!(wire.len(), 0, "codec consumed exactly its bytes");
    }

    /// Tuple codec round-trips arbitrary tuples.
    #[test]
    fn tuple_codec_roundtrip(
        ts in any::<Ts>(),
        values in prop::collection::vec(arb_value(), 0..6),
        is_r in any::<bool>(),
    ) {
        let rel = if is_r { Rel::R } else { Rel::S };
        let t = Tuple::new(rel, ts, values);
        let mut wire = t.encode();
        let back = Tuple::decode(&mut wire).unwrap();
        prop_assert_eq!(back.rel(), t.rel());
        prop_assert_eq!(back.ts(), t.ts());
        prop_assert_eq!(back.values().len(), t.values().len());
    }

    /// Stream-message codec round-trips.
    #[test]
    fn stream_message_roundtrip(router in any::<u32>(), seq in any::<u64>(), k in any::<i64>(), punct in any::<bool>()) {
        let msg = if punct {
            StreamMessage::Punct(Punctuation { router, seq })
        } else {
            StreamMessage::Data {
                router,
                seq,
                purpose: Purpose::Store,
                tuple: Tuple::new(Rel::R, 1, vec![Value::Int(k)]),
            }
        };
        let mut wire = msg.encode();
        prop_assert_eq!(StreamMessage::decode(&mut wire).unwrap(), msg);
    }

    /// Window algebra: expiry implies out-of-scope, and in-scope is
    /// symmetric; full-history never expires.
    #[test]
    fn window_laws(ws in 1u64..10_000, a in 0u64..100_000, b in 0u64..100_000) {
        let w = WindowSpec::sliding(ws);
        prop_assert_eq!(w.in_scope(a, b), w.in_scope(b, a));
        if w.is_expired(a, b) {
            prop_assert!(!w.in_scope(a, b));
        }
        prop_assert!(!WindowSpec::FullHistory.is_expired(a, b));
    }

    /// The chained index agrees with the naive per-tuple-eviction index on
    /// every probe, for any interleaving of inserts and probes with
    /// monotone timestamps.
    #[test]
    fn chained_index_equals_naive_index(
        ops in prop::collection::vec((0u8..2, 0i64..20, 1u64..40), 1..300),
        period in 1u64..500,
    ) {
        let window = WindowSpec::sliding(200);
        let mut chained = ChainedIndex::new(IndexKind::Hash, window, period);
        let mut naive = NaiveWindowIndex::new(IndexKind::Hash, window);
        let mut ts: Ts = 0;
        for (op, key, dt) in ops {
            ts += dt;
            let key = Value::Int(key);
            if op == 0 {
                let t = Tuple::new(Rel::R, ts, vec![key.clone()]);
                chained.insert(key.clone(), t.clone());
                naive.insert(key, t);
            } else {
                chained.expire(ts);
                naive.expire(ts);
                let plan = ProbePlan::ExactKey(key);
                let mut a: Vec<Ts> = Vec::new();
                chained.probe(&plan, ts, |t| a.push(t.ts()));
                let mut b: Vec<Ts> = Vec::new();
                naive.probe(&plan, ts, |t| b.push(t.ts()));
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "probe mismatch at ts {}", ts);
            }
        }
    }

    /// Topic matching: a literal key always matches itself; `#` matches
    /// everything; `*`-for-one-word substitution of any key matches.
    #[test]
    fn topic_matching_laws(words in prop::collection::vec("[a-z]{1,4}", 1..5), star_at in any::<prop::sample::Index>()) {
        let key = words.join(".");
        prop_assert!(pattern_matches(&key, &key));
        prop_assert!(pattern_matches("#", &key));
        let i = star_at.index(words.len());
        let mut pat = words.clone();
        pat[i] = "*".to_string();
        prop_assert!(pattern_matches(&pat.join("."), &key));
        // One extra word breaks a literal pattern. (Built outside the
        // assert: prop_assert! stringifies its expression into a format
        // string, so inline `{key}` placeholders would be reinterpreted.)
        let longer = format!("{key}.extra");
        prop_assert!(!pattern_matches(&key, &longer));
    }

    /// The reorder buffer releases every offered message at most once, in
    /// nondecreasing (seq, router) order, and exactly the messages at or
    /// below the final watermark.
    #[test]
    fn reorder_buffer_release_order(
        msgs in prop::collection::vec((0u32..3, 1u64..50), 1..100),
        final_punct in 1u64..60,
    ) {
        use bistream::core::ordering::ReorderBuffer;
        let mut buf = ReorderBuffer::new();
        for r in 0..3 {
            buf.register_router(r, 0);
        }
        let mut out = Vec::new();
        // Deduplicate (router, seq) pairs — a joiner receives at most one
        // copy of a tuple per router sequence slot.
        let mut seen = std::collections::HashSet::new();
        let mut offered = 0usize;
        for (router, seq) in msgs {
            if seen.insert((router, seq)) {
                offered += 1;
                buf.offer(
                    StreamMessage::Data {
                        router,
                        seq,
                        purpose: Purpose::Store,
                        tuple: Tuple::new(Rel::R, seq, vec![Value::Int(seq as i64)]),
                    },
                    &mut out,
                );
            }
        }
        for r in 0..3 {
            buf.offer(StreamMessage::Punct(Punctuation { router: r, seq: final_punct }), &mut out);
        }
        // Released in (seq, router) order.
        for w in out.windows(2) {
            prop_assert!((w[0].seq, w[0].router) <= (w[1].seq, w[1].router));
        }
        // Exactly the messages ≤ watermark released; the rest remain.
        let released = out.len();
        let below: usize = seen.iter().filter(|(_, s)| *s <= final_punct).count();
        prop_assert_eq!(released, below);
        prop_assert_eq!(buf.depth(), offered - released);
    }

    /// For any random stream, the biclique engine (every routing
    /// strategy) and the join-matrix produce exactly the reference join's
    /// result multiset — the two architectures are observationally
    /// equivalent.
    #[test]
    fn biclique_and_matrix_agree_with_reference(
        ops in prop::collection::vec((any::<bool>(), 0i64..12, 1u64..30), 10..120),
        routing_pick in 0u8..3,
    ) {
        use bistream::core::config::{EngineConfig, RoutingStrategy};
        use bistream::core::engine::BicliqueEngine;
        use bistream::matrix::{JoinMatrix, MatrixConfig};
        use bistream::types::predicate::JoinPredicate;
        use bistream::types::tuple::JoinResult;

        const W: Ts = 150;
        let mut tuples = Vec::new();
        let mut ts = 0;
        for (is_r, key, dt) in ops {
            ts += dt;
            let rel = if is_r { Rel::R } else { Rel::S };
            tuples.push(Tuple::new(rel, ts, vec![Value::Int(key)]));
        }

        let mut expect: Vec<_> = Vec::new();
        for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
            for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
                if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= W {
                    expect.push(JoinResult::of(a.clone(), b.clone()).identity());
                }
            }
        }
        expect.sort();

        let routing = match routing_pick {
            0 => RoutingStrategy::Random,
            1 => RoutingStrategy::Hash,
            _ => RoutingStrategy::ContRand { subgroups: 2 },
        };
        let cfg = EngineConfig {
            r_joiners: 2,
            s_joiners: 3,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(W),
            routing,
            archive_period_ms: 20,
            punctuation_interval_ms: 10,
            ordering: true,
            seed: 5,
            batch_size: 1,
            adaptive: Default::default(),
        };
        let auditor = bistream::types::audit::Auditor::new();
        auditor.enable_oracle(Some(W));
        let mut engine = BicliqueEngine::builder(cfg).auditor(auditor.clone()).build().unwrap();
        engine.capture_results();
        let mut next_punct = 10;
        for t in &tuples {
            while next_punct <= t.ts() {
                engine.punctuate(next_punct).unwrap();
                next_punct += 10;
            }
            engine.ingest(t, t.ts()).unwrap();
        }
        engine.punctuate(ts + 10).unwrap();
        engine.flush().unwrap();
        let mut bic: Vec<_> = engine.take_captured().iter().map(JoinResult::identity).collect();
        bic.sort();
        prop_assert_eq!(&bic, &expect, "biclique {:?}", routing);
        let audit = auditor.finish();
        prop_assert!(audit.is_empty(), "biclique {:?} audit violations: {:#?}", routing, audit);

        let mcfg = MatrixConfig {
            rows: 2,
            cols: 2,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(W),
            archive_period_ms: 20,
            seed: 5,
        };
        let m_audit = bistream::types::audit::Auditor::new();
        m_audit.enable_oracle(Some(W));
        let mut matrix = JoinMatrix::new(mcfg).unwrap();
        matrix.set_auditor(m_audit.clone());
        matrix.capture_results();
        for t in &tuples {
            matrix.ingest(t, t.ts()).unwrap();
        }
        let mut mat: Vec<_> = matrix.take_captured().iter().map(JoinResult::identity).collect();
        mat.sort();
        prop_assert_eq!(&mat, &expect, "matrix");
        let m_violations = m_audit.finish();
        prop_assert!(m_violations.is_empty(), "matrix audit violations: {:#?}", m_violations);
    }

    /// Micro-batching is purely mechanical: for any monotone-ts stream and
    /// every routing strategy, the engine at batch sizes {1, 3, 7, 64}
    /// produces the *identical ordered* result sequence (ordering on) and
    /// the same trace span totals as the per-tuple seed path (RouterCore::
    /// route + a StreamMessage channel + JoinerCore::handle), whose result
    /// multiset in turn equals the brute-force reference join.
    #[test]
    fn micro_batching_preserves_results_order_and_traces(
        ops in prop::collection::vec((any::<bool>(), 0i64..10, 1u64..20), 10..100),
        routing_pick in 0u8..3,
    ) {
        use bistream::cluster::CostModel;
        use bistream::core::config::{EngineConfig, RoutingStrategy};
        use bistream::core::engine::BicliqueEngine;
        use bistream::core::delivery::{ChannelNet, DeliveryMode};
        use bistream::core::joiner::JoinerCore;
        use bistream::core::layout::{JoinerId, Layout};
        use bistream::core::router::RouterCore;
        use bistream::types::predicate::JoinPredicate;
        use bistream::types::registry::Observability;
        use bistream::types::tuple::JoinResult;
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        const W: Ts = 150;
        const PUNCT: Ts = 10;
        const SEED: u64 = 5;
        type Identity = (Ts, Vec<Value>, Ts, Vec<Value>);
        let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
        let routing = match routing_pick {
            0 => RoutingStrategy::Random,
            1 => RoutingStrategy::Hash,
            _ => RoutingStrategy::ContRand { subgroups: 2 },
        };

        let mut tuples = Vec::new();
        let mut ts = 0;
        for (is_r, key, dt) in ops {
            ts += dt;
            let rel = if is_r { Rel::R } else { Rel::S };
            tuples.push(Tuple::new(rel, ts, vec![Value::Int(key)]));
        }
        let end = ts + PUNCT;

        // Per-tuple seed path: the unbatched machinery wired by hand, with
        // the invariant auditor watching every hook it exposes.
        let seed_audit = bistream::types::audit::Auditor::new();
        let reference: Vec<Identity> = {
            let subgroups = match routing {
                RoutingStrategy::ContRand { subgroups } => subgroups,
                _ => 1,
            };
            let layout = Layout::new(2, 3, subgroups).unwrap();
            let seq = Arc::new(AtomicU64::new(0));
            let mut router = RouterCore::new(0, routing, predicate.clone(), SEED, seq);
            router.set_auditor(seed_audit.clone());
            let router_ids = [(0u32, 0u64)];
            let mut joiners: std::collections::BTreeMap<JoinerId, JoinerCore> = layout
                .all_units()
                .map(|(side, id)| {
                    let mut j = JoinerCore::new(
                        id,
                        side,
                        predicate.clone(),
                        WindowSpec::sliding(W),
                        20,
                        true,
                        &router_ids,
                        CostModel::default(),
                    );
                    j.set_auditor(seed_audit.clone());
                    (id, j)
                })
                .collect();
            let mut net: ChannelNet = ChannelNet::new(DeliveryMode::InOrder);
            let mut out: Vec<Identity> = Vec::new();
            let mut copies = Vec::new();
            let mut drain = |net: &mut ChannelNet,
                             joiners: &mut std::collections::BTreeMap<JoinerId, JoinerCore>,
                             now: Ts,
                             out: &mut Vec<Identity>| {
                while let Some(f) = net.deliver_next() {
                    let j = joiners.get_mut(&f.dest).unwrap();
                    j.set_now(now);
                    j.handle(f.msg, &mut |r: JoinResult| out.push(r.identity())).unwrap();
                }
            };
            let mut next_punct = PUNCT;
            for t in &tuples {
                while next_punct <= t.ts() {
                    router.punctuate(&layout, &mut copies);
                    for c in copies.drain(..) {
                        net.send(0, c.dest, c.msg);
                    }
                    drain(&mut net, &mut joiners, next_punct, &mut out);
                    next_punct += PUNCT;
                }
                router.route(t, &layout, &mut copies).unwrap();
                for c in copies.drain(..) {
                    net.send(0, c.dest, c.msg);
                }
                drain(&mut net, &mut joiners, t.ts(), &mut out);
            }
            router.punctuate(&layout, &mut copies);
            for c in copies.drain(..) {
                net.send(0, c.dest, c.msg);
            }
            drain(&mut net, &mut joiners, end, &mut out);
            for j in joiners.values_mut() {
                j.set_now(end);
                j.flush(&mut |r: JoinResult| out.push(r.identity())).unwrap();
            }
            out
        };

        // The seed path itself matches the brute-force reference join.
        let mut expect: Vec<Identity> = Vec::new();
        for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
            for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
                if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= W {
                    expect.push(JoinResult::of(a.clone(), b.clone()).identity());
                }
            }
        }
        expect.sort();
        let mut ref_sorted = reference.clone();
        ref_sorted.sort();
        prop_assert_eq!(&ref_sorted, &expect, "per-tuple seed path {:?}", routing);
        let seed_violations = seed_audit.finish();
        prop_assert!(seed_violations.is_empty(), "seed path audit: {:#?}", seed_violations);

        // The batched engine reproduces the seed path's *ordered* output at
        // every batch size, with identical trace span totals.
        let mut span_base: Option<usize> = None;
        for &batch in &[1usize, 3, 7, 64] {
            let cfg = EngineConfig {
                r_joiners: 2,
                s_joiners: 3,
                predicate: predicate.clone(),
                window: WindowSpec::sliding(W),
                routing,
                archive_period_ms: 20,
                punctuation_interval_ms: PUNCT,
                ordering: true,
                seed: SEED,
                batch_size: batch,
                adaptive: Default::default(),
            };
            let obs = Observability::with_tracing(3);
            let auditor = bistream::types::audit::Auditor::new();
            auditor.enable_oracle(Some(W));
            let mut engine = BicliqueEngine::builder(cfg)
                .observability(obs.clone())
                .auditor(auditor.clone())
                .build()
                .unwrap();
            engine.capture_results();
            let mut next_punct = PUNCT;
            for t in &tuples {
                while next_punct <= t.ts() {
                    engine.punctuate(next_punct).unwrap();
                    next_punct += PUNCT;
                }
                engine.ingest(t, t.ts()).unwrap();
            }
            engine.punctuate(end).unwrap();
            engine.flush().unwrap();
            let ordered: Vec<Identity> =
                engine.take_captured().iter().map(JoinResult::identity).collect();
            prop_assert_eq!(&ordered, &reference, "batch {} ordered output {:?}", batch, routing);
            let violations = auditor.finish();
            prop_assert!(violations.is_empty(), "batch {} audit: {:#?}", batch, violations);
            obs.tracer.flush_pending();
            let spans: usize = obs.tracer.drain().iter().map(|t| t.spans.len()).sum();
            match span_base {
                None => span_base = Some(spans),
                Some(base) => {
                    prop_assert_eq!(spans, base, "batch {} trace span total", batch);
                }
            }
        }
    }

    /// Adversarial cross-channel delivery: a seeded scheduler that picks a
    /// random non-empty channel each step preserves only pairwise FIFO
    /// (Definition 8), yet the ordering protocol still produces exactly
    /// the reference join, and the invariant auditor — including its
    /// nested-loop output oracle — observes zero violations. Order
    /// consistency (Definition 7) is free of the delivery interleaving.
    #[test]
    fn adversarial_delivery_is_order_consistent_and_audit_clean(
        ops in prop::collection::vec((any::<bool>(), 0i64..10, 1u64..20), 10..100),
        shuffle_seed in any::<u64>(),
        routing_pick in 0u8..3,
    ) {
        use bistream::cluster::CostModel;
        use bistream::core::config::RoutingStrategy;
        use bistream::core::delivery::{ChannelNet, DeliveryMode};
        use bistream::core::joiner::JoinerCore;
        use bistream::core::layout::{JoinerId, Layout};
        use bistream::core::router::RouterCore;
        use bistream::types::audit::Auditor;
        use bistream::types::predicate::JoinPredicate;
        use bistream::types::tuple::JoinResult;
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        const W: Ts = 150;
        const PUNCT: Ts = 10;
        type Identity = (Ts, Vec<Value>, Ts, Vec<Value>);
        let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
        let routing = match routing_pick {
            0 => RoutingStrategy::Random,
            1 => RoutingStrategy::Hash,
            _ => RoutingStrategy::ContRand { subgroups: 2 },
        };
        let subgroups = match routing {
            RoutingStrategy::ContRand { subgroups } => subgroups,
            _ => 1,
        };

        let mut tuples = Vec::new();
        let mut ts = 0;
        for (is_r, key, dt) in ops {
            ts += dt;
            let rel = if is_r { Rel::R } else { Rel::S };
            tuples.push(Tuple::new(rel, ts, vec![Value::Int(key)]));
        }
        let end = ts + PUNCT;

        let auditor = Auditor::new();
        auditor.enable_oracle(Some(W));
        let layout = Layout::new(2, 3, subgroups).unwrap();
        let seq = Arc::new(AtomicU64::new(0));
        let mut router = RouterCore::new(0, routing, predicate.clone(), 5, seq);
        router.set_auditor(auditor.clone());
        let router_ids = [(0u32, 0u64)];
        let mut joiners: std::collections::BTreeMap<JoinerId, JoinerCore> = layout
            .all_units()
            .map(|(side, id)| {
                let mut j = JoinerCore::new(
                    id,
                    side,
                    predicate.clone(),
                    WindowSpec::sliding(W),
                    20,
                    true,
                    &router_ids,
                    CostModel::default(),
                );
                j.set_auditor(auditor.clone());
                (id, j)
            })
            .collect();
        let mut net: ChannelNet = ChannelNet::new(DeliveryMode::Shuffled { seed: shuffle_seed });
        let mut out: Vec<Identity> = Vec::new();
        let mut copies = Vec::new();
        let mut drain = |net: &mut ChannelNet,
                         joiners: &mut std::collections::BTreeMap<JoinerId, JoinerCore>,
                         now: Ts,
                         out: &mut Vec<Identity>| {
            while let Some(f) = net.deliver_next() {
                let j = joiners.get_mut(&f.dest).unwrap();
                j.set_now(now);
                j.handle(f.msg, &mut |r: JoinResult| {
                    auditor.observe_output(&r.r.to_string(), &r.s.to_string());
                    out.push(r.identity());
                })
                .unwrap();
            }
        };
        let mut next_punct = PUNCT;
        for t in &tuples {
            auditor.observe_input(
                t.rel() == Rel::R,
                t.ts(),
                t.get(0).unwrap().to_string(),
                t.to_string(),
            );
            while next_punct <= t.ts() {
                router.punctuate(&layout, &mut copies);
                for c in copies.drain(..) {
                    net.send(0, c.dest, c.msg);
                }
                drain(&mut net, &mut joiners, next_punct, &mut out);
                next_punct += PUNCT;
            }
            router.route(t, &layout, &mut copies).unwrap();
            for c in copies.drain(..) {
                net.send(0, c.dest, c.msg);
            }
            drain(&mut net, &mut joiners, t.ts(), &mut out);
        }
        router.punctuate(&layout, &mut copies);
        for c in copies.drain(..) {
            net.send(0, c.dest, c.msg);
        }
        drain(&mut net, &mut joiners, end, &mut out);
        for j in joiners.values_mut() {
            j.set_now(end);
            j.flush(&mut |r: JoinResult| {
                auditor.observe_output(&r.r.to_string(), &r.s.to_string());
                out.push(r.identity());
            })
            .unwrap();
        }

        let mut expect: Vec<Identity> = Vec::new();
        for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
            for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
                if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= W {
                    expect.push(JoinResult::of(a.clone(), b.clone()).identity());
                }
            }
        }
        expect.sort();
        out.sort();
        prop_assert_eq!(&out, &expect, "shuffled delivery {:?}", routing);
        let violations = auditor.finish();
        prop_assert!(violations.is_empty(), "adversarial delivery audit: {:#?}", violations);
    }

    /// A registry scrape is sorted by `(name, labels)` and stable: the
    /// same metric set produces the same key sequence no matter the
    /// registration order, and label order within a registration is
    /// irrelevant to series identity.
    #[test]
    fn registry_scrape_is_sorted_and_registration_order_free(
        series in prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{1,4}"), 1..20),
        shuffle_from in any::<prop::sample::Index>(),
    ) {
        use bistream::types::registry::MetricsRegistry;

        let reg_a = MetricsRegistry::new();
        for (name, unit) in &series {
            reg_a.counter(name, &[("joiner", unit), ("side", "R")]);
        }
        // Register the same series rotated and with labels swapped.
        let reg_b = MetricsRegistry::new();
        let pivot = shuffle_from.index(series.len());
        for (name, unit) in series[pivot..].iter().chain(&series[..pivot]) {
            reg_b.counter(name, &[("side", "R"), ("joiner", unit)]);
        }

        let keys_a: Vec<String> =
            reg_a.scrape(0).samples.iter().map(|s| s.key.render()).collect();
        let keys_b: Vec<String> =
            reg_b.scrape(0).samples.iter().map(|s| s.key.render()).collect();
        let mut sorted = keys_a.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(&keys_a, &sorted, "scrape must come out sorted and deduplicated");
        prop_assert_eq!(&keys_a, &keys_b, "registration order must not leak into scrapes");
    }

    /// Histogram quantiles are monotone in q and never exceed the maximum
    /// recorded sample, for any sample set.
    #[test]
    fn histogram_quantiles_monotone_and_bounded(
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        use bistream::types::metrics::Histogram;

        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let values: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone in q: {:?}", values);
        }
        let max = *samples.iter().max().unwrap();
        prop_assert_eq!(h.max(), max);
        for &v in &values {
            prop_assert!(v <= max, "quantile {v} exceeds max {max}");
        }
        prop_assert_eq!(h.quantile(1.0), max);
    }

    /// Zipf samples stay inside the universe for any theta.
    #[test]
    fn zipf_in_universe(n in 1u64..5_000, theta in 0.0f64..1.2, seed in any::<u64>()) {
        use bistream::workload::keys::ZipfSampler;
        use rand::{rngs::StdRng, SeedableRng};
        let z = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Trace span invariants hold for ANY sequence of raw hop stamps fed
    /// through a real tracer — even out-of-order or overlapping ones,
    /// which the tracer clamps into causal order at record time: every
    /// span has exit ≥ enter, consecutive spans never run backwards, and
    /// the queue-wait/service attribution telescopes exactly to the
    /// end-to-end latency.
    #[test]
    fn trace_spans_are_causal_and_attribution_is_exact(
        raw in prop::collection::vec((0usize..6, 0u64..1_000_000, 0u64..1_000), 1..40),
        branches in 1u32..5,
    ) {
        use bistream::types::trace::{HopKind, Tracer};

        let tracer = Tracer::new(1);
        let seq = 1u64;
        prop_assert!(tracer.sampled(seq));
        tracer.begin(seq, branches);
        for &(kind, enter, dur) in &raw {
            tracer.span(seq, HopKind::ALL[kind], "u", enter, enter + dur);
        }
        // The trace stays pending until its last branch closes.
        for _ in 0..branches {
            prop_assert_eq!(tracer.completed_len(), 0);
            prop_assert_eq!(tracer.pending_len(), 1);
            tracer.end_branch(seq);
        }
        let traces = tracer.drain();
        prop_assert_eq!(traces.len(), 1);
        let t = &traces[0];
        prop_assert!(t.complete);
        prop_assert_eq!(t.spans.len(), raw.len());

        for s in &t.spans {
            prop_assert!(s.exit >= s.enter, "span runs backwards: {s:?}");
        }
        for w in t.spans.windows(2) {
            prop_assert!(
                w[1].enter >= w[0].exit,
                "spans not causally ordered: {:?} then {:?}", w[0], w[1]
            );
        }
        let timings = t.hop_timings();
        let attributed: u64 = timings.iter().map(|h| h.wait + h.service).sum();
        prop_assert_eq!(attributed, t.end_to_end(), "latency attribution must be exact");
    }

    /// The sampling predicate is a pure function of the sequence number:
    /// deterministic across tracers, hits exactly the 1-in-N residue
    /// class, and always samples the first routed tuple (seq 1).
    #[test]
    fn trace_sampling_is_deterministic_residue_class(
        one_in in 1u64..100,
        seqs in prop::collection::vec(0u64..10_000, 1..50),
    ) {
        use bistream::types::trace::Tracer;

        let a = Tracer::new(one_in);
        let b = Tracer::new(one_in);
        prop_assert!(a.sampled(1), "the first routed tuple is always traced");
        for &s in &seqs {
            prop_assert_eq!(a.sampled(s), b.sampled(s));
            let expect = s != 0 && s % one_in == 1 % one_in;
            prop_assert_eq!(a.sampled(s), expect, "seq {s} with one_in {one_in}");
        }
    }
}

// Backend-equivalence properties spin up real threaded pipelines (two
// backends × three batch sizes per case), so they run far fewer cases
// than the in-process properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The pluggable-backend contract: for any key stream and every
    /// framing size {1, 7, 64}, the broker-queue pipeline and the
    /// lock-free sharded ring runtime produce the *identical ordered*
    /// result sequence, the same trace span totals, and a clean invariant
    /// audit — and both match the brute-force reference join. A single
    /// router plus the ordering protocol pins each joiner's release order
    /// to the ingest sequence, so backend equality is exact sequence
    /// equality, not just multiset equality.
    #[test]
    fn broker_and_sharded_backends_are_observationally_equivalent(
        ops in prop::collection::vec((any::<bool>(), 0i64..8), 24..72),
    ) {
        use bistream::core::config::EngineConfig;
        use bistream::core::exec::{Backend, Pipeline, PipelineConfig};
        use bistream::types::audit::Auditor;

        // Identity = the unique payload id in attribute 1: the live
        // pipelines stamp wall-clock timestamps, which differ between the
        // two runs, so tuple identity must not depend on `ts`.
        let payload_id = |t: &Tuple| match t.get(1) {
            Some(Value::Int(i)) => *i,
            other => panic!("payload id attribute: {other:?}"),
        };
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for (i, (r_side, rk)) in ops.iter().enumerate() {
            if !r_side {
                continue;
            }
            for (j, (s_side, sk)) in ops.iter().enumerate() {
                if !s_side && rk == sk {
                    expect.push((i as i64, j as i64));
                }
            }
        }
        expect.sort_unstable();

        for &batch in &[1usize, 7, 64] {
            let mut runs: Vec<(Vec<(i64, i64)>, usize, u64)> = Vec::new();
            for backend in [Backend::Broker, Backend::Sharded] {
                let mut engine = EngineConfig::default_equi();
                // Wide window: the run lasts milliseconds, so nothing
                // expires and the reference join is exact.
                engine.window = WindowSpec::sliding(600_000);
                engine.batch_size = batch;
                let mut c = PipelineConfig::new(engine);
                c.routers = 1;
                c.backend = backend;
                c.capture_results = true;
                c.trace_one_in = Some(5);
                let auditor = Auditor::new();
                c.auditor = Some(auditor.clone());
                let p = Pipeline::launch(c).unwrap();
                for (i, (r_side, key)) in ops.iter().enumerate() {
                    let rel = if *r_side { Rel::R } else { Rel::S };
                    p.ingest(&Tuple::new(
                        rel,
                        p.now(),
                        vec![Value::Int(*key), Value::Int(i as i64)],
                    ))
                    .unwrap();
                }
                let report = p.finish().unwrap();
                auditor.assert_clean();
                let ordered: Vec<(i64, i64)> = report
                    .captured
                    .iter()
                    .map(|res| (payload_id(&res.r), payload_id(&res.s)))
                    .collect();
                let spans: usize = report.traces.iter().map(|t| t.spans.len()).sum();
                runs.push((ordered, spans, report.snapshot.results));
            }
            let (sharded_run, broker_run) = (runs.pop().unwrap(), runs.pop().unwrap());
            let mut multiset = broker_run.0.clone();
            multiset.sort_unstable();
            prop_assert_eq!(
                &multiset, &expect,
                "batch {}: captured results vs brute-force reference", batch
            );
            prop_assert_eq!(
                &broker_run.0, &sharded_run.0,
                "batch {}: ordered result sequences diverge across backends", batch
            );
            prop_assert_eq!(
                broker_run.1, sharded_run.1,
                "batch {}: trace span totals diverge across backends", batch
            );
            prop_assert_eq!(
                broker_run.2, sharded_run.2,
                "batch {}: result counters diverge across backends", batch
            );
        }
    }

    /// The adaptive router is backend-equivalent *across forced mid-stream
    /// strategy switches*: the stream is fed in three segments with one
    /// deterministic committed switch between segments (quiesce → one-shot
    /// flip → wait for the commit), so both backends route segment k under
    /// the same epoch-k plan. At every batch size {1, 7, 64} the broker
    /// and sharded pipelines then produce the identical ordered result
    /// sequence, match the brute-force reference join, and keep the armed
    /// Auditor clean. (Copies and trace spans are NOT compared: retiring
    /// probe coverage is wall-clock-timed, so no-match probe fan-out may
    /// legitimately differ.)
    #[test]
    fn adaptive_routing_is_backend_equivalent_across_forced_switches(
        ops in prop::collection::vec((any::<bool>(), 0i64..8), 24..60),
    ) {
        use bistream::core::config::{AdaptiveTuning, EngineConfig, RoutingStrategy};
        use bistream::core::exec::{Backend, Pipeline, PipelineConfig};
        use bistream::types::audit::Auditor;
        use std::sync::Arc;
        use std::time::{Duration, Instant};

        fn wait_until(limit: Duration, mut cond: impl FnMut() -> bool) -> bool {
            let t0 = Instant::now();
            loop {
                if cond() {
                    return true;
                }
                if t0.elapsed() > limit {
                    return cond();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        let payload_id = |t: &Tuple| match t.get(1) {
            Some(Value::Int(i)) => *i,
            other => panic!("payload id attribute: {other:?}"),
        };
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for (i, (r_side, rk)) in ops.iter().enumerate() {
            if !r_side {
                continue;
            }
            for (j, (s_side, sk)) in ops.iter().enumerate() {
                if !s_side && rk == sk {
                    expect.push((i as i64, j as i64));
                }
            }
        }
        expect.sort_unstable();
        let seg = ops.len().div_ceil(3);

        for &batch in &[1usize, 7, 64] {
            let mut runs: Vec<(Vec<(i64, i64)>, u64, u64)> = Vec::new();
            for backend in [Backend::Broker, Backend::Sharded] {
                let mut engine = EngineConfig::default_equi();
                engine.window = WindowSpec::sliding(600_000);
                engine.batch_size = batch;
                engine.routing = RoutingStrategy::Adaptive { subgroups: 2 };
                // Disable the wall-clock-timed natural tuner: the only
                // switches are the deterministic one-shot flips below, so
                // both backends partition the stream identically by epoch.
                engine.adaptive =
                    AdaptiveTuning { tune_every_puncts: u32::MAX, ..AdaptiveTuning::default() };
                let mut c = PipelineConfig::new(engine);
                c.routers = 1;
                c.backend = backend;
                c.capture_results = true;
                let auditor = Auditor::new();
                c.auditor = Some(auditor.clone());
                let p = Pipeline::launch(c).unwrap();
                let shared = Arc::clone(p.adaptive_state().expect("adaptive engine"));
                let mut fed = 0u64;
                for (chunk_idx, chunk) in ops.chunks(seg).enumerate() {
                    for (i, (r_side, key)) in chunk.iter().enumerate() {
                        let id = (chunk_idx * seg + i) as i64;
                        let rel = if *r_side { Rel::R } else { Rel::S };
                        p.ingest(&Tuple::new(
                            rel,
                            p.now(),
                            vec![Value::Int(*key), Value::Int(id)],
                        ))
                        .unwrap();
                        fed += 1;
                    }
                    // Quiesce the router (routing of everything fed so far
                    // is fixed), then force exactly one committed switch.
                    prop_assert!(
                        wait_until(Duration::from_secs(30), || p.stats().ingested == fed),
                        "{:?} batch {}: router did not quiesce", backend, batch
                    );
                    if (chunk_idx + 1) * seg < ops.len() {
                        let before = shared.switches();
                        shared.request_flip();
                        prop_assert!(
                            wait_until(Duration::from_secs(30), || shared.switches() > before),
                            "{:?} batch {}: forced switch never committed", backend, batch
                        );
                    }
                }
                let switches = shared.switches();
                let report = p.finish().unwrap();
                auditor.assert_clean();
                let ordered: Vec<(i64, i64)> = report
                    .captured
                    .iter()
                    .map(|res| (payload_id(&res.r), payload_id(&res.s)))
                    .collect();
                runs.push((ordered, report.snapshot.results, switches));
            }
            let (sharded_run, broker_run) = (runs.pop().unwrap(), runs.pop().unwrap());
            let mut multiset = broker_run.0.clone();
            multiset.sort_unstable();
            prop_assert_eq!(
                &multiset, &expect,
                "batch {}: adaptive results vs brute-force reference", batch
            );
            prop_assert_eq!(
                &broker_run.0, &sharded_run.0,
                "batch {}: adaptive ordered sequences diverge across backends", batch
            );
            prop_assert_eq!(
                broker_run.1, sharded_run.1,
                "batch {}: adaptive result counters diverge across backends", batch
            );
            prop_assert_eq!(broker_run.2, 2u64, "batch {}: exactly two forced switches", batch);
            prop_assert_eq!(sharded_run.2, 2u64, "batch {}: exactly two forced switches", batch);
        }
    }
}

/// Acceptance gate: one hundred committed strategy switches with tuples in
/// flight throughout, the Auditor (with its nested-loop output oracle)
/// armed on every hook, and the result multiset still exactly the
/// brute-force reference join. Two routers force the full two-phase
/// publish/ack/commit path on every one of those switches.
#[test]
fn hundred_forced_switches_stay_audit_clean_and_complete() {
    use bistream::core::config::{EngineConfig, RoutingStrategy};
    use bistream::core::engine::BicliqueEngine;
    use bistream::types::audit::Auditor;
    use bistream::types::tuple::JoinResult;

    const W: Ts = 150;
    const PUNCT: Ts = 10;
    let mut cfg = EngineConfig::default_equi();
    cfg.r_joiners = 2;
    cfg.s_joiners = 3;
    cfg.window = WindowSpec::sliding(W);
    cfg.routing = RoutingStrategy::Adaptive { subgroups: 2 };
    cfg.punctuation_interval_ms = PUNCT;
    cfg.archive_period_ms = 20;
    cfg.seed = 5;
    let auditor = Auditor::new();
    auditor.enable_oracle(Some(W));
    let mut engine = BicliqueEngine::builder(cfg)
        .routers(2)
        .auditor(auditor.clone())
        .build()
        .unwrap();
    engine.capture_results();
    let shared = std::sync::Arc::clone(engine.adaptive_state().expect("adaptive engine"));
    shared.force_flip_every_tick(true);

    // Deterministic stream: three tuples per punctuation round, flipping
    // sides, nine keys — every round both routers tick, so the storm
    // commits roughly one switch per round.
    let mut tuples = Vec::new();
    let mut ts: Ts = 0;
    let mut step: i64 = 0;
    let mut next_punct = PUNCT;
    while shared.switches() < 100 {
        ts += 3;
        let rel = if step % 2 == 0 { Rel::R } else { Rel::S };
        let t = Tuple::new(rel, ts, vec![Value::Int(step % 9)]);
        while next_punct <= ts {
            engine.punctuate(next_punct).unwrap();
            next_punct += PUNCT;
        }
        engine.ingest(&t, ts).unwrap();
        tuples.push(t);
        step += 1;
        assert!(step < 100_000, "storm never reached 100 switches");
    }
    shared.force_flip_every_tick(false);
    engine.punctuate(ts + PUNCT).unwrap();
    engine.flush().unwrap();

    assert!(shared.switches() >= 100, "got {} switches", shared.switches());
    let mut expect: Vec<_> = Vec::new();
    for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
        for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
            if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= W {
                expect.push(JoinResult::of(a.clone(), b.clone()).identity());
            }
        }
    }
    expect.sort();
    let mut got: Vec<_> = engine.take_captured().iter().map(JoinResult::identity).collect();
    got.sort();
    assert_eq!(got, expect, "results lost or invented across {} switches", shared.switches());
    let violations = auditor.finish();
    assert!(violations.is_empty(), "audit violations under the switch storm: {violations:#?}");
}
