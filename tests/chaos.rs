//! Chaos integration tests: crash/recover drills through the facade, the
//! exploration harness finding a deliberately seeded recovery bug, and
//! deterministic replay of the committed regression artifact.

use bistream::core::chaos::{explore, replay, run_trial, scenario_profile, SCENARIOS};
use bistream::types::fault::{ChaosArtifact, ChaosProfile, FaultEvent, FaultPlan, TrialSpec};
use proptest::prelude::*;
use std::path::Path;

fn artifact_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/chaos_artifacts").join(name)
}

#[test]
fn healthy_engine_survives_every_scenario() {
    let spec = TrialSpec { pairs: 24, ..TrialSpec::default() };
    for scenario in SCENARIOS {
        let plan = FaultPlan::generate(11, &scenario_profile(scenario, &spec));
        let report = run_trial(&plan, &spec);
        assert!(!report.failed(), "{scenario}: {:?}", report.violations);
        assert_eq!(report.results, 24, "{scenario}: every pair must match exactly once");
    }
}

#[test]
fn crash_drill_is_deterministic_and_lossless() {
    let spec = TrialSpec { pairs: 32, ..TrialSpec::default() };
    let plan = FaultPlan {
        seed: 0,
        scenario: "crash".into(),
        events: vec![
            FaultEvent::CrashUnit { unit: 0, at_step: 60 },
            FaultEvent::CrashUnit { unit: 1, at_step: 90 },
        ],
    };
    let a = run_trial(&plan, &spec);
    let b = run_trial(&plan, &spec);
    assert_eq!(a, b, "same plan, same spec => byte-identical report");
    assert!(!a.failed(), "recovery must be clean: {:?}", a.violations);
    assert_eq!(a.results, 32);
    assert_eq!(a.crashes_fired, 2);
}

#[test]
fn explorer_finds_the_seeded_recovery_bug() {
    let spec = TrialSpec { pairs: 24, bug: "skip_rehydrate".to_owned(), ..TrialSpec::default() };
    let exploration = explore("crash", 16, &spec, true);
    assert!(
        !exploration.failures.is_empty(),
        "skip_rehydrate must be caught within 16 crash seeds"
    );
    let artifact = &exploration.failures[0];
    assert!(!artifact.violations.is_empty(), "minimized plan still fails");
    // The artifact round-trips through its own JSON byte-for-byte.
    let json = artifact.to_json();
    let parsed = ChaosArtifact::from_json(&json).expect("self-produced JSON parses");
    assert_eq!(&parsed, artifact);
    assert_eq!(parsed.to_json(), json, "serialisation is byte-stable");
    // And replaying it re-fails with the same violations.
    let again = replay(artifact);
    assert_eq!(again.violations, artifact.violations);
}

#[test]
fn committed_artifact_refails_deterministically() {
    let text = std::fs::read_to_string(artifact_path("skip_rehydrate.json"))
        .expect("committed artifact present");
    let artifact = ChaosArtifact::from_json(&text).expect("committed artifact parses");
    assert_eq!(artifact.trial.bug, "skip_rehydrate");

    let report = replay(&artifact);
    assert!(report.failed(), "the committed regression must still fail");
    assert!(report.crashes_fired >= 1, "the plan's crash drill must fire");
    assert_eq!(replay(&artifact), report, "replay is deterministic");

    // The same plan against a healthy engine passes: the regression is
    // the bug's, not the schedule's.
    let healthy = TrialSpec { bug: "none".to_owned(), ..artifact.trial.clone() };
    let clean = run_trial(&artifact.plan, &healthy);
    assert!(!clean.failed(), "healthy engine must survive the plan: {:?}", clean.violations);
    assert_eq!(clean.results, artifact.trial.pairs as usize);
}

proptest! {
    /// Plan generation is a pure function of (seed, profile), and every
    /// generated plan survives a JSON round-trip unchanged.
    #[test]
    fn generated_plans_are_deterministic_and_roundtrip(seed in any::<u64>()) {
        let mut profile = ChaosProfile::new("mixed", vec![0, 1], vec![0, 1, 2, 3]);
        profile.queues = vec!["tuple.q.0".to_owned()];
        profile.delays = 2;
        profile.partitions = 2;
        profile.crashes = 1;
        profile.stalls = 1;
        let a = FaultPlan::generate(seed, &profile);
        let b = FaultPlan::generate(seed, &profile);
        prop_assert_eq!(&a, &b);
        let parsed = FaultPlan::from_json(&a.to_json()).expect("self-produced JSON parses");
        prop_assert_eq!(&parsed, &a);
        // The termination guard: every event's effect ends by the horizon.
        for e in &a.events {
            prop_assert!(e.horizon() <= a.horizon());
        }
    }
}
