//! Cross-crate integration tests: both join architectures against the
//! brute-force reference join, across predicates, strategies and
//! transports.

use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::delivery::DeliveryMode;
use bistream::core::engine::BicliqueEngine;
use bistream::matrix::{JoinMatrix, MatrixConfig};
use bistream::types::predicate::{CmpOp, JoinPredicate};
use bistream::types::rel::Rel;
use bistream::types::time::Ts;
use bistream::types::tuple::{JoinResult, Tuple};
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;

const WINDOW_MS: Ts = 800;

/// A deterministic mixed stream with controlled key collisions.
fn stream(n: usize, keys: i64, seed: u64) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(n);
    let mut state = seed | 1;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let rel = if state & 1 == 0 { Rel::R } else { Rel::S };
        let key = ((state >> 33) % keys as u64) as i64;
        out.push(Tuple::new(rel, (i as Ts) * 4, vec![Value::Int(key)]));
    }
    out
}

fn reference(tuples: &[Tuple], predicate: &JoinPredicate) -> Vec<(Ts, Vec<Value>, Ts, Vec<Value>)> {
    let mut expect = Vec::new();
    for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
        for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
            if a.ts().abs_diff(b.ts()) <= WINDOW_MS && predicate.evaluate(a, b).unwrap() {
                expect.push(JoinResult::of(a.clone(), b.clone()).identity());
            }
        }
    }
    expect.sort();
    expect
}

fn run_biclique(
    tuples: &[Tuple],
    predicate: JoinPredicate,
    routing: RoutingStrategy,
    routers: usize,
    delivery: DeliveryMode,
) -> Vec<(Ts, Vec<Value>, Ts, Vec<Value>)> {
    let cfg = EngineConfig {
        r_joiners: 3,
        s_joiners: 2,
        predicate,
        window: WindowSpec::sliding(WINDOW_MS),
        routing,
        archive_period_ms: 50,
        punctuation_interval_ms: 30,
        ordering: true,
        seed: 11,
        batch_size: 1,
        adaptive: Default::default(),
    };
    let auditor = bistream::types::audit::Auditor::new();
    // The O(n²) output oracle only understands equi keys; the other
    // invariant checks are armed for every predicate.
    if matches!(cfg.predicate, JoinPredicate::Equi { .. }) {
        auditor.enable_oracle(Some(WINDOW_MS));
    }
    let manual = !matches!(delivery, DeliveryMode::InOrder);
    let mut builder =
        BicliqueEngine::builder(cfg).routers(routers).delivery(delivery).auditor(auditor.clone());
    if manual {
        builder = builder.manual_pump();
    }
    let mut engine = builder.build().expect("valid config");
    engine.capture_results();
    let mut next_punct = 30;
    let mut last = 0;
    for t in tuples {
        while next_punct <= t.ts() {
            engine.punctuate(next_punct).unwrap();
            if manual {
                engine.pump().unwrap();
            }
            next_punct += 30;
        }
        engine.ingest(t, t.ts()).unwrap();
        last = t.ts();
    }
    engine.punctuate(last + 30).unwrap();
    if manual {
        engine.pump().unwrap();
    }
    engine.flush().unwrap();
    let mut got: Vec<_> = engine.take_captured().iter().map(JoinResult::identity).collect();
    got.sort();
    auditor.assert_clean();
    got
}

fn run_matrix(tuples: &[Tuple], predicate: JoinPredicate) -> Vec<(Ts, Vec<Value>, Ts, Vec<Value>)> {
    let cfg = MatrixConfig {
        rows: 2,
        cols: 3,
        predicate,
        window: WindowSpec::sliding(WINDOW_MS),
        archive_period_ms: 50,
        seed: 11,
    };
    let auditor = bistream::types::audit::Auditor::new();
    if matches!(cfg.predicate, JoinPredicate::Equi { .. }) {
        auditor.enable_oracle(Some(WINDOW_MS));
    }
    let mut m = JoinMatrix::new(cfg).unwrap();
    m.set_auditor(auditor.clone());
    m.capture_results();
    for t in tuples {
        m.ingest(t, t.ts()).unwrap();
    }
    let mut got: Vec<_> = m.take_captured().iter().map(JoinResult::identity).collect();
    got.sort();
    auditor.assert_clean();
    got
}

#[test]
fn biclique_equi_matches_reference_under_every_strategy() {
    let tuples = stream(600, 17, 0xA);
    let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
    let expect = reference(&tuples, &predicate);
    assert!(!expect.is_empty());
    for routing in
        [RoutingStrategy::Random, RoutingStrategy::Hash, RoutingStrategy::ContRand { subgroups: 2 }]
    {
        let got = run_biclique(&tuples, predicate.clone(), routing, 1, DeliveryMode::InOrder);
        assert_eq!(got, expect, "strategy {routing:?}");
    }
}

#[test]
fn biclique_band_and_theta_match_reference() {
    let tuples = stream(400, 40, 0xB);
    for predicate in [
        JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 3.0 },
        JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Lt },
        JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Ge },
    ] {
        let expect = reference(&tuples, &predicate);
        let got = run_biclique(
            &tuples,
            predicate.clone(),
            RoutingStrategy::Random,
            1,
            DeliveryMode::InOrder,
        );
        assert_eq!(got, expect, "predicate {predicate}");
    }
}

#[test]
fn biclique_exactly_once_with_multiple_routers_and_shuffled_network() {
    let tuples = stream(800, 13, 0xC);
    let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
    let expect = reference(&tuples, &predicate);
    for seed in [1u64, 99] {
        let got = run_biclique(
            &tuples,
            predicate.clone(),
            RoutingStrategy::Random,
            3,
            DeliveryMode::Shuffled { seed },
        );
        assert_eq!(got, expect, "shuffle seed {seed}");
    }
}

#[test]
fn matrix_and_biclique_agree_on_every_predicate() {
    let tuples = stream(500, 23, 0xD);
    for predicate in [
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 2.0 },
        JoinPredicate::Cross,
    ] {
        let expect = reference(&tuples, &predicate);
        let bic = run_biclique(
            &tuples,
            predicate.clone(),
            RoutingStrategy::Random,
            1,
            DeliveryMode::InOrder,
        );
        let mat = run_matrix(&tuples, predicate.clone());
        assert_eq!(bic, expect, "biclique vs reference on {predicate}");
        assert_eq!(mat, expect, "matrix vs reference on {predicate}");
    }
}

#[test]
fn live_pipeline_agrees_with_sync_engine_on_totals() {
    use bistream::core::exec::{Pipeline, PipelineConfig};
    let mut cfg = EngineConfig::default_equi();
    cfg.window = WindowSpec::sliding(60_000);
    cfg.punctuation_interval_ms = 5;
    let pipeline = Pipeline::launch(PipelineConfig::new(cfg)).unwrap();
    let pairs = 400;
    for i in 0..pairs {
        let now = pipeline.now();
        pipeline.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i)])).unwrap();
        pipeline.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i)])).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    let report = pipeline.finish().unwrap();
    assert_eq!(report.snapshot.results, pairs as u64);
    assert_eq!(report.snapshot.ingested, 2 * pairs as u64);
    if let Some(a) = &report.auditor {
        a.assert_clean();
    }
}

#[test]
fn full_history_never_loses_matches() {
    let tuples = stream(300, 9, 0xE);
    let cfg = EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::FullHistory,
        routing: RoutingStrategy::Hash,
        archive_period_ms: 50,
        punctuation_interval_ms: 30,
        ordering: true,
        seed: 5,
        batch_size: 1,
        adaptive: Default::default(),
    };
    let auditor = bistream::types::audit::Auditor::new();
    auditor.enable_oracle(None);
    let mut engine = BicliqueEngine::builder(cfg).auditor(auditor.clone()).build().unwrap();
    engine.capture_results();
    for t in &tuples {
        engine.ingest(t, t.ts()).unwrap();
    }
    engine.punctuate(tuples.last().unwrap().ts() + 50).unwrap();
    engine.flush().unwrap();
    auditor.assert_clean();
    let got = engine.take_captured().len();
    // Reference without window bound.
    let mut expect = 0usize;
    for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
        for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
            if a.get(0) == b.get(0) {
                expect += 1;
            }
        }
    }
    assert_eq!(got, expect);
}
