//! Integration tests for elasticity: scaling under churn must never
//! corrupt results, and the autoscaled simulation must keep its
//! invariants over long horizons.

use bistream::cluster::{CostModel, HpaConfig, MetricTarget};
use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::core::sim::{run_dynamic_scaling, SimConfig, VecFeed};
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::time::Ts;
use bistream::types::tuple::{JoinResult, Tuple};
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;

const WINDOW_MS: Ts = 600;

fn stream(n: usize, keys: i64, seed: u64) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(n);
    let mut state = seed | 1;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
        let rel = if state & 1 == 0 { Rel::R } else { Rel::S };
        let key = ((state >> 33) % keys as u64) as i64;
        out.push(Tuple::new(rel, (i as Ts) * 3, vec![Value::Int(key)]));
    }
    out
}

fn reference_count(tuples: &[Tuple]) -> usize {
    let mut expect = 0;
    for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
        for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
            if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= WINDOW_MS {
                expect += 1;
            }
        }
    }
    expect
}

/// Scale both sides up and down repeatedly mid-stream; results must equal
/// the reference exactly, for every routing strategy.
#[test]
fn repeated_scaling_keeps_exactly_once_semantics() {
    let tuples = stream(900, 19, 0xF00D);
    let expect = reference_count(&tuples);
    assert!(expect > 0);

    for routing in
        [RoutingStrategy::Random, RoutingStrategy::Hash, RoutingStrategy::ContRand { subgroups: 2 }]
    {
        let cfg = EngineConfig {
            r_joiners: 2,
            s_joiners: 2,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(WINDOW_MS),
            routing,
            archive_period_ms: 40,
            punctuation_interval_ms: 25,
            ordering: true,
            seed: 21,
            batch_size: 1,
            adaptive: Default::default(),
        };
        let mut engine = BicliqueEngine::new(cfg).unwrap();
        engine.capture_results();
        let mut next_punct = 25;
        // Scale plan: (at_ts, side, n).
        let plan = [
            (300u64, Rel::R, 4usize),
            (700, Rel::S, 3),
            (1_200, Rel::R, 2),
            (1_800, Rel::S, 2),
            (2_200, Rel::R, 5),
        ];
        let mut step = 0;
        let mut last = 0;
        for t in &tuples {
            while next_punct <= t.ts() {
                engine.punctuate(next_punct).unwrap();
                next_punct += 25;
            }
            while step < plan.len() && t.ts() >= plan[step].0 {
                let (_, side, n) = plan[step];
                engine.scale_to(side, n, t.ts()).unwrap();
                step += 1;
            }
            engine.ingest(t, t.ts()).unwrap();
            last = t.ts();
        }
        engine.punctuate(last + 25).unwrap();
        engine.flush().unwrap();
        let got = engine.take_captured();
        assert_eq!(got.len(), expect, "routing {routing:?}");
        // Also verify identities, not just counts (no accidental dup+miss
        // cancellation).
        let mut ids: Vec<_> = got.iter().map(JoinResult::identity).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), expect, "all results distinct under {routing:?}");
    }
}

/// Draining units must eventually retire (no leak of retired joiners).
#[test]
fn drained_units_retire_within_a_window() {
    let mut cfg = EngineConfig::default_equi();
    cfg.routing = RoutingStrategy::Random;
    cfg.window = WindowSpec::sliding(200);
    let mut engine = BicliqueEngine::new(cfg).unwrap();
    for i in 0..50 {
        engine.ingest(&Tuple::new(Rel::R, i, vec![Value::Int(i as i64)]), i).unwrap();
    }
    engine.scale_to(Rel::R, 1, 50).unwrap();
    assert_eq!(engine.draining_units(), 1);
    // Advance far beyond a window; the drained unit must be gone.
    engine.ingest(&Tuple::new(Rel::S, 1_000, vec![Value::Int(0)]), 1_000).unwrap();
    engine.punctuate(1_001).unwrap();
    assert_eq!(engine.draining_units(), 0);
    assert_eq!(engine.replicas(Rel::R), 1);
}

/// The autoscaled simulation respects the HPA's min/max bounds and keeps
/// producing results through every scale event.
#[test]
fn autoscaled_simulation_respects_bounds_and_liveness() {
    let mut cfg = EngineConfig::default_equi();
    cfg.r_joiners = 1;
    cfg.s_joiners = 1;
    cfg.routing = RoutingStrategy::Random;
    cfg.window = WindowSpec::sliding(2_000);
    cfg.punctuation_interval_ms = 50;
    let engine = BicliqueEngine::builder(cfg)
        .cost_model(CostModel::thesis_operating_point())
        .build()
        .unwrap();

    // A hot stream that forces scaling to the max.
    let mut tuples = Vec::new();
    for i in 0..40_000u64 {
        let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
        tuples.push(Tuple::new(rel, i / 2, vec![Value::Int(((i / 2) % 500) as i64)]));
    }
    let mut feed = VecFeed::new(tuples);
    let hpa = HpaConfig {
        min_replicas: 1,
        max_replicas: 3,
        target: MetricTarget::CpuUtilization(0.8),
        period_ms: 2_000,
        tolerance: 0.1,
        scale_down_stabilization_ms: 8_000,
    };
    let out = run_dynamic_scaling(
        engine,
        &mut feed,
        hpa,
        &SimConfig {
            duration_ms: 20_000,
            sample_interval_ms: 1_000,
            pod_startup_delay_ms: 1_000,
            ..Default::default()
        },
    )
    .unwrap();

    assert!(!out.scale_events.is_empty(), "hot stream must trigger scaling");
    for s in &out.samples {
        assert!(s.r_replicas >= 1 && s.r_replicas <= 3);
        assert!(s.s_replicas >= 1 && s.s_replicas <= 3);
    }
    // Results keep flowing (strictly increasing across the middle of the
    // run where the stream is still hot).
    let mid = out.samples.len() / 2;
    assert!(out.samples[mid].results > out.samples[1].results);
}
