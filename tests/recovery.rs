//! Unit-recovery integration tests: snapshot a joiner's window state,
//! "crash" it (replace it with a fresh unit), restore, and verify no
//! results are lost — the biclique's independent-unit property makes
//! recovery purely local.

use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;

fn cfg() -> EngineConfig {
    EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(10_000),
        routing: RoutingStrategy::Hash,
        archive_period_ms: 100,
        punctuation_interval_ms: 20,
        ordering: true,
        seed: 13,
        batch_size: 1,
        adaptive: Default::default(),
    }
}

#[test]
fn snapshot_restore_preserves_every_future_match() {
    let mut engine = BicliqueEngine::new(cfg()).unwrap();
    engine.capture_results();

    // Store 40 R tuples, quiesce, snapshot every R unit.
    for i in 0..40i64 {
        let ts = i as u64 * 10;
        engine.ingest(&Tuple::new(Rel::R, ts, vec![Value::Int(i)]), ts).unwrap();
    }
    engine.punctuate(500).unwrap();
    let r_units: Vec<_> = engine.layout().units(Rel::R).to_vec();
    let snapshots: Vec<_> =
        r_units.iter().map(|&id| (id, engine.snapshot_unit(id).unwrap())).collect();

    // "Crash" both R units (restore wipes and rebuilds each one).
    let mut restored_total = 0;
    for (id, blob) in snapshots {
        restored_total += engine.restore_unit(id, blob).unwrap();
    }
    assert_eq!(restored_total, 40, "all stored tuples recovered");

    // Every key must still match after recovery.
    for i in 0..40i64 {
        let ts = 600 + i as u64;
        engine.ingest(&Tuple::new(Rel::S, ts, vec![Value::Int(i)]), ts).unwrap();
    }
    engine.punctuate(1_000).unwrap();
    engine.flush().unwrap();
    assert_eq!(engine.take_captured().len(), 40);
}

#[test]
fn restore_without_snapshot_loses_state_demonstrably() {
    // The negative control: replacing a unit with an EMPTY snapshot loses
    // the matches that unit held — proving the snapshot carries real
    // state (and quantifying what an unrecovered crash would cost).
    let mut engine = BicliqueEngine::new(cfg()).unwrap();
    engine.capture_results();
    for i in 0..40i64 {
        let ts = i as u64 * 10;
        engine.ingest(&Tuple::new(Rel::R, ts, vec![Value::Int(i)]), ts).unwrap();
    }
    engine.punctuate(500).unwrap();
    let victim = engine.layout().units(Rel::R)[0];
    let empty = {
        // An empty unit's snapshot.
        let fresh = BicliqueEngine::new(cfg()).unwrap();
        let id = fresh.layout().units(Rel::R)[0];
        fresh.snapshot_unit(id).unwrap()
    };
    assert_eq!(engine.restore_unit(victim, empty).unwrap(), 0);

    for i in 0..40i64 {
        let ts = 600 + i as u64;
        engine.ingest(&Tuple::new(Rel::S, ts, vec![Value::Int(i)]), ts).unwrap();
    }
    engine.punctuate(1_000).unwrap();
    engine.flush().unwrap();
    let got = engine.take_captured().len();
    assert!(got < 40, "losing one unit's state must lose matches (got {got})");
    assert!(got > 0, "the surviving unit still matches");
}

#[test]
fn snapshot_of_unknown_unit_errors() {
    let engine = BicliqueEngine::new(cfg()).unwrap();
    assert!(engine.snapshot_unit(bistream::core::layout::JoinerId(999)).is_err());
    let mut engine = BicliqueEngine::new(cfg()).unwrap();
    let blob = bytes::Bytes::from_static(b"BSN1\0\0\0\0\0\0\0\0");
    assert!(engine.restore_unit(bistream::core::layout::JoinerId(999), blob).is_err());
}
