//! Integration test for the queueing-model analyzer: under steady load
//! the predicted per-unit utilization (λ from the evaluation half of the
//! scrape series × the service time Ŝ calibrated on the first half) must
//! agree with the observed busy-CPU fraction to within 10 % — the E18
//! acceptance bar. A disagreement means the service-time estimate does
//! not transfer across windows, i.e. the model (or the meters feeding it)
//! broke.

use bistream::cluster::{CostModel, HpaConfig};
use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::core::sim::{run_dynamic_scaling, SimConfig, VecFeed};
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::time::Ts;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;

/// A constant-rate two-relation stream: one matching pair every
/// `pair_every_ms`, keys cycling over `keys`.
fn steady_pairs(horizon_ms: Ts, pair_every_ms: Ts, keys: i64) -> Vec<Tuple> {
    let mut out = Vec::new();
    let mut t = 0;
    let mut k = 0i64;
    while t < horizon_ms {
        out.push(Tuple::new(Rel::R, t, vec![Value::Int(k)]));
        out.push(Tuple::new(Rel::S, t, vec![Value::Int(k)]));
        k = (k + 1) % keys;
        t += pair_every_ms;
    }
    out
}

#[test]
fn predicted_utilization_tracks_observed_within_ten_percent() {
    let mut cfg = EngineConfig::default_equi();
    cfg.r_joiners = 2;
    cfg.s_joiners = 2;
    cfg.routing = RoutingStrategy::Hash;
    cfg.predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
    // A short window relative to the 16 s horizon: the index fills within
    // the first second, so per-item cost is stationary over nearly the
    // whole calibration half.
    cfg.window = WindowSpec::sliding(1_000);
    cfg.punctuation_interval_ms = 50;
    let engine = BicliqueEngine::builder(cfg)
        .cost_model(CostModel::thesis_operating_point())
        .build()
        .unwrap();

    // 200 pairs/s for 16 s of virtual time, fixed 2×2 layout.
    let mut feed = VecFeed::new(steady_pairs(16_000, 5, 100));
    let sim = SimConfig {
        duration_ms: 16_000,
        sample_interval_ms: 1_000,
        scale_r: false,
        scale_s: false,
        pod_startup_delay_ms: 0,
        ..Default::default()
    };
    let out = run_dynamic_scaling(engine, &mut feed, HpaConfig::thesis_cpu(), &sim).unwrap();

    assert!(out.metric_series.len() >= 3, "sampler must produce a real series");
    assert!(!out.perf.units.is_empty(), "every pod meter yields a unit row");
    let mut checked = 0;
    for u in &out.perf.units {
        assert!(u.arrivals > 0, "unit {} saw work", u.unit);
        assert!(u.service_us_per_item > 0.0, "unit {} has a service-time estimate", u.unit);
        // Near-idle units (< 0.5 % busy) carry too little signal for a
        // relative bound; everything else must be inside the E18 bar.
        if u.utilization_observed < 0.005 {
            continue;
        }
        let err = (u.utilization_predicted - u.utilization_observed).abs() / u.utilization_observed;
        assert!(
            err <= 0.10,
            "unit {}: predicted {:.4} vs observed {:.4} ({:.1}% off)",
            u.unit,
            u.utilization_predicted,
            u.utilization_observed,
            err * 100.0
        );
        checked += 1;
    }
    assert!(checked > 0, "at least one unit must be busy enough to check: {:?}", out.perf.units);
}

#[test]
fn perf_report_is_empty_for_an_idle_run() {
    let mut cfg = EngineConfig::default_equi();
    cfg.window = WindowSpec::sliding(500);
    let engine = BicliqueEngine::new(cfg).unwrap();
    let mut feed = VecFeed::new(Vec::new());
    let sim = SimConfig {
        duration_ms: 2_000,
        sample_interval_ms: 500,
        scale_r: false,
        scale_s: false,
        pod_startup_delay_ms: 0,
        ..Default::default()
    };
    let out = run_dynamic_scaling(engine, &mut feed, HpaConfig::thesis_cpu(), &sim).unwrap();
    for u in &out.perf.units {
        assert_eq!(u.arrivals, 0, "idle run: {u:?}");
        assert_eq!(u.utilization_observed, 0.0);
    }
    // The virtual-time simulator has no broker queues to check.
    assert!(out.perf.queues.is_empty());
}
