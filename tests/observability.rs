//! The observability acceptance tests: one registry scrape taken through
//! the facade exposes per-joiner, per-router, per-queue and per-pod series
//! from a single end-to-end run, and the event journal captures
//! store/join/punctuation/discard events with virtual-time stamps — for
//! both harnesses (the virtual-time simulator engine and the threaded live
//! pipeline), which record through the same code paths.

use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::core::exec::{Pipeline, PipelineConfig};
use bistream::types::journal::EventKind;
use bistream::types::predicate::JoinPredicate;
use bistream::types::registry::{Observability, RegistrySnapshot};
use bistream::types::rel::Rel;
use bistream::types::trace::{HopKind, Trace};
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;
use std::collections::HashSet;

#[test]
fn simulated_run_exposes_every_tier_in_one_scrape_and_journals_events() {
    let cfg = EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(200),
        routing: RoutingStrategy::Hash,
        archive_period_ms: 50,
        punctuation_interval_ms: 10,
        ordering: true,
        seed: 7,
        batch_size: 1,
        adaptive: Default::default(),
    };
    let obs = Observability::new();
    let auditor = bistream::types::audit::Auditor::new();
    auditor.enable_oracle(Some(200));
    let mut engine = BicliqueEngine::builder(cfg)
        .observability(obs.clone())
        .engine_label("sim")
        .auditor(auditor.clone())
        .build()
        .unwrap();

    // 2 s of virtual time: matching R/S pairs every 10 ms over 4 keys.
    // The 200 ms window over a 2 s horizon forces archived sub-indexes to
    // expire wholesale (Theorem 1), so discard events must appear.
    const HORIZON: u64 = 2_000;
    for i in 0..200u64 {
        let ts = i * 10;
        engine.punctuate(ts).unwrap();
        let key = Value::Int((i % 4) as i64);
        engine.ingest(&Tuple::new(Rel::R, ts, vec![key.clone()]), ts).unwrap();
        engine.ingest(&Tuple::new(Rel::S, ts, vec![key]), ts).unwrap();
    }
    engine.punctuate(HORIZON).unwrap();
    engine.flush().unwrap();
    auditor.assert_clean();

    // One scrape, every tier: engine, router, joiner, index, pod.
    let snap = obs.registry.scrape(HORIZON);
    assert_eq!(snap.counter("bistream_tuples_ingested_total", &[("engine", "sim")]), Some(400));
    assert_eq!(
        snap.counter(
            "bistream_router_route_decisions_total",
            &[("router", "r0"), ("strategy", "hash")]
        ),
        Some(400)
    );
    let stored = |units: [&str; 2]| -> u64 {
        units
            .iter()
            .map(|u| {
                snap.counter("bistream_joiner_stored_total", &[("joiner", u)])
                    .unwrap_or_else(|| panic!("missing joiner series for {u}"))
            })
            .sum()
    };
    assert_eq!(stored(["R0", "R1"]), 200, "every R tuple stored exactly once");
    assert_eq!(stored(["S2", "S3"]), 200, "every S tuple stored exactly once");
    let mut cpu_total = 0;
    for pod in ["R0", "R1", "S2", "S3"] {
        cpu_total += snap
            .counter("bistream_pod_cpu_busy_us_total", &[("pod", pod)])
            .unwrap_or_else(|| panic!("missing pod series for {pod}"));
        assert!(
            snap.get("bistream_index_live_tuples", &[("joiner", pod)]).is_some(),
            "pod {pod} has no index series"
        );
    }
    assert!(cpu_total > 0, "no simulated CPU charged to any pod");

    // The journal holds the full story, stamped in virtual time.
    let events = obs.journal.drain();
    assert_eq!(obs.journal.dropped(), 0, "ring must not wrap in this run");
    let tags: HashSet<&str> = events.iter().map(|e| e.kind.tag()).collect();
    for tag in [
        "TupleStored",
        "JoinEmitted",
        "PunctuationAdvanced",
        "SubIndexArchived",
        "SubIndexDiscarded",
    ] {
        assert!(tags.contains(tag), "journal missing {tag}; saw {tags:?}");
    }
    for e in &events {
        assert!(e.ts <= HORIZON, "virtual stamp {} beyond horizon", e.ts);
    }
    // Store events are stamped with the stored tuple's event time, which
    // this feed only ever set to multiples of 10 ms.
    assert!(events.iter().filter(|e| e.kind.tag() == "TupleStored").all(|e| e.ts % 10 == 0));
}

#[test]
fn live_run_exposes_every_tier_in_one_scrape_including_queues() {
    let mut engine = EngineConfig::default_equi();
    engine.window = WindowSpec::sliding(60_000);
    let p = Pipeline::launch(PipelineConfig::new(engine)).unwrap();
    for i in 0..100i64 {
        let now = p.now();
        p.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i)])).unwrap();
        p.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i)])).unwrap();
    }
    // Let the router and joiner threads churn through a few punctuation
    // cycles before scraping.
    std::thread::sleep(std::time::Duration::from_millis(200));

    let snap = p.observability().registry.scrape(p.now());
    // Queue tier — only the live pipeline has a broker, and all 200
    // publishes into the shared ingest queue happened before the scrape.
    assert_eq!(
        snap.counter("bistream_queue_published_total", &[("queue", "tuple.exchange.routers")]),
        Some(200)
    );
    assert!(snap.get("bistream_queue_depth", &[("queue", "unit.0")]).is_some());
    // Joiner, router, pod and engine tiers, same names as the simulator.
    let stored: u64 = ["R0", "R1"]
        .iter()
        .filter_map(|u| snap.counter("bistream_joiner_stored_total", &[("joiner", u)]))
        .sum();
    assert!(stored > 0, "no stores visible per joiner yet");
    assert!(snap
        .get("bistream_router_route_decisions_total", &[("router", "r0"), ("strategy", "hash")])
        .is_some());
    assert!(snap.get("bistream_pod_cpu_busy_us_total", &[("pod", "S2")]).is_some());
    assert!(snap.counter("bistream_tuples_ingested_total", &[("engine", "live")]).is_some());

    // The journal records through the same code paths as the simulator;
    // stamps are tuple event times, i.e. never ahead of the wall clock.
    let now = p.now();
    let events = p.observability().journal.drain();
    assert!(events.iter().any(|e| e.kind.tag() == "TupleStored"));
    assert!(events.iter().all(|e| e.ts <= now));

    // The Prometheus rendering covers the same single-scrape surface.
    let text = p.observability().registry.prometheus_text(p.now());
    assert!(text.contains("# TYPE bistream_queue_depth gauge"));
    assert!(text.contains("queue=\"unit.0\""));
    assert!(text.contains("# TYPE bistream_joiner_stored_total counter"));

    let report = p.finish().unwrap();
    if let Some(a) = &report.auditor {
        a.assert_clean();
    }
}

#[test]
fn journal_overflow_is_visible_as_a_registry_gauge() {
    let obs = Observability::with_journal_capacity(8);
    for i in 0..20u64 {
        obs.journal.record(i, EventKind::TupleStored { side: Rel::R, unit: 0, seq: i });
    }
    // 20 records through an 8-slot ring evict the oldest 12, and the
    // bundle exposes that silent loss as a gauge in the same scrape as
    // everything else.
    assert_eq!(obs.journal.dropped(), 12);
    let snap = obs.registry.scrape(20);
    assert_eq!(snap.gauge("bistream_journal_dropped_total", &[]), Some(12));
    // What survives is the newest `capacity` events, in record order.
    let kept = obs.journal.drain();
    assert_eq!(kept.len(), 8);
    assert_eq!(kept.first().map(|e| e.ts), Some(12));
    assert_eq!(kept.last().map(|e| e.ts), Some(19));
}

/// Drive the deterministic virtual-time workload through a traced engine
/// and return the collected traces (sorted by id) plus the final scrape.
fn traced_sim_run(obs: Observability) -> (Vec<Trace>, RegistrySnapshot) {
    let cfg = EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(200),
        routing: RoutingStrategy::Hash,
        archive_period_ms: 50,
        punctuation_interval_ms: 10,
        ordering: true,
        seed: 11,
        batch_size: 1,
        adaptive: Default::default(),
    };
    let mut engine = BicliqueEngine::builder(cfg).observability(obs.clone()).build().unwrap();
    for i in 0..100u64 {
        let ts = i * 10;
        engine.punctuate(ts).unwrap();
        let key = Value::Int((i % 4) as i64);
        engine.ingest(&Tuple::new(Rel::R, ts, vec![key.clone()]), ts).unwrap();
        engine.ingest(&Tuple::new(Rel::S, ts, vec![key]), ts).unwrap();
    }
    engine.punctuate(1_000).unwrap();
    engine.flush().unwrap();
    obs.tracer.flush_pending();
    let mut traces = obs.tracer.drain();
    traces.sort_by_key(|t| t.id);
    (traces, obs.registry.scrape(1_000))
}

#[test]
fn sampled_traces_are_complete_deterministic_and_attributed() {
    let (traces, snap) = traced_sim_run(Observability::with_tracing(4));
    assert!(!traces.is_empty(), "sampling 1-in-4 over 200 tuples yields traces");
    let complete: Vec<&Trace> = traces.iter().filter(|t| t.complete).collect();
    assert!(!complete.is_empty(), "some traces must close every branch");
    for t in &complete {
        // Every journey starts at the router and reaches its unit.
        assert!(t.has_hop(HopKind::Route), "trace {} has no ingress hop", t.id);
        assert!(
            t.has_hop(HopKind::Store) || t.has_hop(HopKind::Probe),
            "trace {} never reached a joiner",
            t.id
        );
        // Latency attribution is exact: queue wait plus service over the
        // recorded hops sums to the end-to-end latency.
        let timings = t.hop_timings();
        let attributed: u64 = timings.iter().map(|h| h.wait + h.service).sum();
        assert_eq!(attributed, t.end_to_end(), "trace {} leaks latency", t.id);
    }
    // Matching R/S pairs share a key and timestamp, so at least one
    // sampled tuple's probe emitted results: a full ingress→emit journey.
    assert!(complete.iter().any(|t| t.has_hop(HopKind::Emit)), "no sampled trace reached an emit");

    // The same completed traces feed the per-hop histogram tier.
    assert!(snap.counter("bistream_trace_completed_total", &[]).unwrap_or(0) > 0);
    for hop in ["route", "store", "probe"] {
        assert!(
            snap.get("bistream_trace_hop_service_ms", &[("hop", hop)]).is_some(),
            "missing service histogram for hop {hop}"
        );
        assert!(
            snap.get("bistream_trace_hop_wait_ms", &[("hop", hop)]).is_some(),
            "missing wait histogram for hop {hop}"
        );
    }
    assert!(snap.get("bistream_trace_e2e_latency_ms", &[]).is_some());

    // Sampling is keyed on the deterministic tuple sequence, so a
    // same-seed rerun reproduces the trace set exactly.
    let (again, _) = traced_sim_run(Observability::with_tracing(4));
    assert_eq!(traces, again, "traces must be reproducible across same-seed runs");

    // With tracing disabled the same run records nothing.
    let (none, _) = traced_sim_run(Observability::new());
    assert!(none.is_empty(), "disabled tracer must collect no traces");
}
