//! Integration tests for the runtime invariant auditor: a clean audited
//! end-to-end run with the nested-loop oracle enabled, and the acceptance
//! case for fault injection — a deliberately corrupted watermark (via the
//! test-only mutation hook) must be caught as a Definition 7 violation
//! carrying an event-chain diagnostic.

use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::types::audit::{Auditor, Rule};
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::time::Ts;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;

const W: Ts = 100;

fn config() -> EngineConfig {
    EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(W),
        routing: RoutingStrategy::Hash,
        archive_period_ms: 20,
        punctuation_interval_ms: 10,
        ordering: true,
        seed: 7,
        batch_size: 1,
    }
}

fn t(rel: Rel, ts: Ts, key: i64) -> Tuple {
    Tuple::new(rel, ts, vec![Value::Int(key)])
}

/// A full engine run with every audit hook live and the output oracle
/// comparing against the nested-loop reference join: zero violations.
#[test]
fn audited_engine_run_with_oracle_is_clean() {
    let auditor = Auditor::new();
    auditor.enable_oracle(Some(W));
    let mut engine = BicliqueEngine::builder(config()).auditor(auditor.clone()).build().unwrap();
    assert!(engine.auditor().is_some());
    let mut next_punct = 10;
    for i in 0..200u64 {
        let ts = i * 3;
        while next_punct <= ts {
            engine.punctuate(next_punct).unwrap();
            next_punct += 10;
        }
        let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
        engine.ingest(&t(rel, ts, (i % 6) as i64), ts).unwrap();
    }
    engine.punctuate(700).unwrap();
    engine.flush().unwrap();
    auditor.assert_clean();
}

/// The acceptance case: corrupt one router's punctuation frontier through
/// the test-only hook (simulating a broken watermark computation) and the
/// auditor must report the premature release as a Definition 7 violation
/// whose diagnostic carries the event chain that led to it, including the
/// shared journal tail.
#[test]
fn corrupt_watermark_is_caught_with_event_chain() {
    let auditor = Auditor::new();
    let mut engine = BicliqueEngine::builder(config()).auditor(auditor.clone()).build().unwrap();
    // One healthy punctuation round first, so the shared event journal has
    // real history for the diagnostic to attach.
    engine.ingest(&t(Rel::R, 1, 1), 1).unwrap();
    engine.ingest(&t(Rel::S, 2, 1), 2).unwrap();
    engine.punctuate(10).unwrap();
    // More data arrives, but no punctuation follows — these tuples must
    // stay buffered in every reorder buffer.
    engine.ingest(&t(Rel::R, 11, 2), 11).unwrap();
    engine.ingest(&t(Rel::S, 12, 2), 12).unwrap();
    assert_eq!(auditor.violation_count(), 0, "healthy run must be clean so far");

    // Fault injection: pretend router 0's frontier reached seq 1000.
    engine.debug_corrupt_frontier(0, 1_000).unwrap();

    let violations = auditor.take_violations();
    assert!(!violations.is_empty(), "corrupt watermark must be caught");
    let v = violations
        .iter()
        .find(|v| v.rule == Rule::ReleaseOrder)
        .unwrap_or_else(|| panic!("expected a ReleaseOrder violation, got {violations:?}"));
    assert!(v.message.contains("punctuation frontier"), "{}", v.message);
    assert!(!v.chain.is_empty(), "violation must carry its event chain");
    assert!(
        v.chain.iter().any(|line| line.starts_with("journal:")),
        "chain must include the journal tail: {:?}",
        v.chain
    );
}
