//! Integration tests for the runtime invariant auditor: a clean audited
//! end-to-end run with the nested-loop oracle enabled, and the acceptance
//! case for fault injection — a deliberately corrupted watermark (via the
//! test-only mutation hook) must be caught as a Definition 7 violation
//! carrying an event-chain diagnostic.

use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::types::audit::{Auditor, Rule};
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::time::Ts;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;

const W: Ts = 100;

fn config() -> EngineConfig {
    EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(W),
        routing: RoutingStrategy::Hash,
        archive_period_ms: 20,
        punctuation_interval_ms: 10,
        ordering: true,
        seed: 7,
        batch_size: 1,
        adaptive: Default::default(),
    }
}

fn t(rel: Rel, ts: Ts, key: i64) -> Tuple {
    Tuple::new(rel, ts, vec![Value::Int(key)])
}

/// A full engine run with every audit hook live and the output oracle
/// comparing against the nested-loop reference join: zero violations.
#[test]
fn audited_engine_run_with_oracle_is_clean() {
    let auditor = Auditor::new();
    auditor.enable_oracle(Some(W));
    let mut engine = BicliqueEngine::builder(config()).auditor(auditor.clone()).build().unwrap();
    assert!(engine.auditor().is_some());
    let mut next_punct = 10;
    for i in 0..200u64 {
        let ts = i * 3;
        while next_punct <= ts {
            engine.punctuate(next_punct).unwrap();
            next_punct += 10;
        }
        let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
        engine.ingest(&t(rel, ts, (i % 6) as i64), ts).unwrap();
    }
    engine.punctuate(700).unwrap();
    engine.flush().unwrap();
    auditor.assert_clean();
}

/// The acceptance case: corrupt one router's punctuation frontier through
/// the test-only hook (simulating a broken watermark computation) and the
/// auditor must report the premature release as a Definition 7 violation
/// whose diagnostic carries the event chain that led to it, including the
/// shared journal tail.
#[test]
fn corrupt_watermark_is_caught_with_event_chain() {
    let auditor = Auditor::new();
    let mut engine = BicliqueEngine::builder(config()).auditor(auditor.clone()).build().unwrap();
    // One healthy punctuation round first, so the shared event journal has
    // real history for the diagnostic to attach.
    engine.ingest(&t(Rel::R, 1, 1), 1).unwrap();
    engine.ingest(&t(Rel::S, 2, 1), 2).unwrap();
    engine.punctuate(10).unwrap();
    // More data arrives, but no punctuation follows — these tuples must
    // stay buffered in every reorder buffer.
    engine.ingest(&t(Rel::R, 11, 2), 11).unwrap();
    engine.ingest(&t(Rel::S, 12, 2), 12).unwrap();
    assert_eq!(auditor.violation_count(), 0, "healthy run must be clean so far");

    // Fault injection: pretend router 0's frontier reached seq 1000.
    engine.debug_corrupt_frontier(0, 1_000).unwrap();

    let violations = auditor.take_violations();
    assert!(!violations.is_empty(), "corrupt watermark must be caught");
    let v = violations
        .iter()
        .find(|v| v.rule == Rule::ReleaseOrder)
        .unwrap_or_else(|| panic!("expected a ReleaseOrder violation, got {violations:?}"));
    assert!(v.message.contains("punctuation frontier"), "{}", v.message);
    assert!(!v.chain.is_empty(), "violation must carry its event chain");
    assert!(
        v.chain.iter().any(|line| line.starts_with("journal:")),
        "chain must include the journal tail: {:?}",
        v.chain
    );
}

fn adaptive_config() -> EngineConfig {
    EngineConfig { routing: RoutingStrategy::Adaptive { subgroups: 2 }, ..config() }
}

/// Drive a deterministic alternating R/S stream with punctuation on the
/// configured 10 ms interval through `steps` virtual-time steps of 3 ms.
fn drive_storm(engine: &mut BicliqueEngine, steps: u64) {
    let mut next_punct = 10;
    for i in 0..steps {
        let ts = i * 3;
        while next_punct <= ts {
            engine.punctuate(next_punct).unwrap();
            next_punct += 10;
        }
        let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
        engine.ingest(&t(rel, ts, (i % 6) as i64), ts).unwrap();
    }
    engine.punctuate(steps * 3 + 10).unwrap();
    engine.flush().unwrap();
}

/// Adversarial switch storm: the tuner is forced to flip the routing
/// strategy on *every* punctuation tick while the network delivers frames
/// in shuffled (per-channel-FIFO but globally adversarial) order, with
/// two routers so every flip runs the full two-phase publish/ack/commit
/// fence. The armed auditor — nested-loop output oracle included — must
/// stay completely clean.
#[test]
fn switch_storm_under_shuffled_delivery_is_clean() {
    use bistream::core::delivery::DeliveryMode;

    let auditor = Auditor::new();
    auditor.enable_oracle(Some(W));
    let mut engine = BicliqueEngine::builder(adaptive_config())
        .routers(2)
        .delivery(DeliveryMode::Shuffled { seed: 0xF1F0 })
        .auditor(auditor.clone())
        .build()
        .unwrap();
    let shared = std::sync::Arc::clone(engine.adaptive_state().expect("adaptive engine"));
    shared.force_flip_every_tick(true);
    drive_storm(&mut engine, 400);
    assert!(
        shared.switches() >= 20,
        "the storm must actually flip strategies: {} switches",
        shared.switches()
    );
    assert!(engine.stats().results > 0, "the storm stream must produce joins");
    auditor.assert_clean();
}

/// The fence matters: the same storm with the test-only
/// `debug_skip_fence` hook armed — routers adopt each new plan mid-stream
/// and immediately drop the old probe coverage instead of retiring it
/// behind the punctuation fence — must be caught by the output oracle as
/// missing join results. Proves the bug hook (and hence the fence) is
/// observable, not theater.
#[test]
fn skipping_the_punctuation_fence_is_caught_by_the_oracle() {
    let auditor = Auditor::new();
    auditor.enable_oracle(Some(W));
    // Two routers: a single router publishes, acks, commits and adopts a
    // flip inside one tick, so there is never a committed epoch ahead of
    // its store plan for the bug hook to jump to. With two, each router
    // lags the commit until its own next tick — exactly the gap the
    // fence covers and the hook corrupts.
    let mut engine = BicliqueEngine::builder(adaptive_config())
        .routers(2)
        .auditor(auditor.clone())
        .build()
        .unwrap();
    let shared = std::sync::Arc::clone(engine.adaptive_state().expect("adaptive engine"));
    shared.force_flip_every_tick(true);
    engine.debug_skip_fence(true);
    drive_storm(&mut engine, 400);
    assert!(shared.switches() >= 20, "got {} switches", shared.switches());
    let violations = auditor.finish();
    let oracle = violations
        .iter()
        .find(|v| v.rule == Rule::OutputOracle)
        .unwrap_or_else(|| panic!("unfenced adoption must lose results, got {violations:?}"));
    assert!(oracle.message.contains("missing"), "{}", oracle.message);
}
