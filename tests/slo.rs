//! SLO-engine acceptance tests through the facade: the seeded broker
//! stall breaches the throughput floor with a byte-stable flight-recorder
//! bundle, a frozen ordering frontier is caught by the progress watchdog
//! within bounded ticks, and — the false-positive guarantee — an idle
//! pipeline raises no alerts at all.

use bistream::core::chaos::run_broker_stall_drill;
use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::core::exec::{Pipeline, PipelineConfig};
use bistream::types::metric_names as names;
use bistream::types::predicate::JoinPredicate;
use bistream::types::recorder::BreachBundle;
use bistream::types::registry::{Observability, Sampler};
use bistream::types::rel::Rel;
use bistream::types::slo::SloSpec;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::watchdog::{scan, StallKind, WatchdogConfig};
use bistream::types::window::WindowSpec;

/// A seeded broker stall must grade as an SLO breach — burn alert on the
/// activity-gated throughput floor — and the breach bundle must survive a
/// JSON round-trip byte for byte (it is a committed-artifact format).
#[test]
fn seeded_broker_stall_breaches_the_slo_with_a_byte_stable_bundle() {
    let drill = run_broker_stall_drill(
        7,
        10,
        40,
        SloSpec::new().min_ingest_tps(50.0),
        WatchdogConfig::default(),
    )
    .unwrap();
    assert_eq!(drill.plan.scenario, "broker_stall");

    let health = &drill.report.health;
    let slo = health.slo.as_ref().expect("SLO was configured");
    assert!(slo.breached, "the stalled window must burn the error budget: {slo:?}");
    assert!(!slo.alerts.is_empty());
    let alert = &slo.alerts[0];
    assert_eq!(alert.alert, names::ALERT_SLO_BURN);
    assert_eq!(alert.objective, names::SLO_MIN_INGEST_TPS);
    assert!(alert.fast_burn >= 1.0 && alert.slow_burn >= 1.0);
    assert!(slo.availability_pct() < 100.0);

    // Breach ⇒ the flight recorder dumped a bundle; round-trip it.
    let bundle = health.bundle.as_ref().expect("breach must produce a bundle");
    assert!(!bundle.scrapes.is_empty(), "bundle carries the recent scrape tail");
    let text = bundle.to_json();
    let parsed = BreachBundle::from_json(&text).expect("bundle parses back");
    assert_eq!(parsed.to_json(), text, "bundle JSON is byte-stable");
}

/// A frozen ordering frontier — watermark pinned while tuples keep
/// arriving and buffering — must be flagged as a [`StallKind::FrontierStall`]
/// within `stall_ticks` scrape intervals of the freeze, never as idleness.
#[test]
fn frozen_frontier_is_detected_by_the_watchdog_within_bounded_ticks() {
    let cfg = EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(60_000),
        routing: RoutingStrategy::Hash,
        archive_period_ms: 1_000,
        punctuation_interval_ms: 10,
        ordering: true,
        seed: 7,
        batch_size: 1,
        adaptive: Default::default(),
    };
    let obs = Observability::new();
    let mut engine = BicliqueEngine::builder(cfg).observability(obs.clone()).build().unwrap();
    let mut sampler = Sampler::new(obs.registry.clone(), 50);
    sampler.force_sample(0);

    // Healthy phase: the frontier advances with every punctuation, so
    // these intervals must not look like a stall.
    for i in 0..20i64 {
        let ts = (i as u64) * 10;
        engine.ingest(&Tuple::new(Rel::R, ts, vec![Value::Int(i)]), ts).unwrap();
        engine.ingest(&Tuple::new(Rel::S, ts, vec![Value::Int(i)]), ts).unwrap();
        engine.punctuate(ts + 1).unwrap();
        sampler.maybe_sample(ts);
    }

    // Freeze the frontier (test-only hook): punctuations keep flowing but
    // no longer advance it, so arriving tuples pile up in reorder buffers.
    engine.debug_freeze_frontier(true);
    const FREEZE_MS: u64 = 200;
    for i in 20..60i64 {
        let ts = (i as u64) * 10;
        engine.ingest(&Tuple::new(Rel::R, ts, vec![Value::Int(i)]), ts).unwrap();
        engine.ingest(&Tuple::new(Rel::S, ts, vec![Value::Int(i)]), ts).unwrap();
        engine.punctuate(ts + 1).unwrap();
        sampler.maybe_sample(ts);
    }
    let series = bistream::types::metrics::finalize_scrape_series(
        &obs.registry,
        600,
        sampler.into_series(),
    );

    let cfg = WatchdogConfig::default();
    let verdicts = scan(&cfg, &series);
    let frontier: Vec<_> =
        verdicts.iter().filter(|v| v.kind == StallKind::FrontierStall).collect();
    assert!(!frontier.is_empty(), "the frozen frontier must be flagged: {verdicts:?}");
    for v in &frontier {
        // Detection is bounded: the run starts at the first stalled scrape
        // (one interval after the freeze at the 50 ms cadence), and needs
        // `stall_ticks` no-progress intervals to qualify.
        assert!(v.from_ms >= FREEZE_MS, "run begins after the freeze: {v:?}");
        assert!(v.from_ms <= FREEZE_MS + 50, "run begins at the next scrape: {v:?}");
        assert!(v.ticks >= cfg.stall_ticks as u64, "{v:?}");
        assert!(v.buffered > 0, "stall evidence requires buffered work: {v:?}");
        assert_eq!(v.alert(), names::ALERT_PROGRESS_STALL);
    }
    // The healthy prefix produced no verdicts of its own: every flagged
    // run lies inside the frozen phase.
    assert!(verdicts.iter().all(|v| v.from_ms >= FREEZE_MS), "{verdicts:?}");
}

/// The false-positive guarantee: a pipeline with SLOs armed but nothing
/// to do — no ingest at all — must end healthy. No burn alerts (the floor
/// is activity-gated; timer-driven punctuations are not activity), no
/// stall verdicts (empty buffers never trip the watchdog), no bundle.
#[test]
fn idle_pipeline_raises_no_alerts() {
    let mut engine = EngineConfig::default_equi();
    engine.window = WindowSpec::sliding(60_000);
    let mut config = PipelineConfig::new(engine);
    config.slo = Some(SloSpec::new().min_ingest_tps(100.0).p99_latency_ms(10));
    let p = Pipeline::launch(config).unwrap();
    // Several scrape intervals of pure idleness, long enough for the
    // routers to punctuate repeatedly on their timers.
    for _ in 0..4 {
        std::thread::sleep(std::time::Duration::from_millis(40));
        p.sample();
    }
    let report = p.finish().unwrap();

    let slo = report.health.slo.as_ref().expect("SLO was configured");
    assert!(!slo.breached, "idle must not breach: {slo:?}");
    assert!(slo.alerts.is_empty(), "{:?}", slo.alerts);
    for o in &slo.objectives {
        assert_eq!(o.breached_windows, 0, "{o:?}");
        assert!(!o.alerted, "{o:?}");
    }
    assert!(report.health.stalls.is_empty(), "{:?}", report.health.stalls);
    assert!(report.health.bundle.is_none());
    assert!(!report.health.breached());
    assert!((slo.availability_pct() - 100.0).abs() < 1e-9);
}
