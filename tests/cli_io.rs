//! Integration tests for the CLI plumbing and the file adapters: parse a
//! command line, read a tuple file, run the join, write results — the
//! full `bistream` binary path, exercised as a library.

use bistream::cli::{parse_args, CliCondition};
use bistream::core::engine::BicliqueEngine;
use bistream::types::rel::Rel;
use bistream::workload::io::{CsvTupleReader, ResultWriter};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

#[test]
fn file_to_file_equi_join_round_trip() {
    let opts = parse_args(&argv(
        "--r-schema orders:id:int,amount:float --s-schema payments:ref:int,paid:float \
         --on-equal id=ref --window-ms 60000",
    ))
    .unwrap();
    assert_eq!(opts.condition, CliCondition::Equal("id".into(), "ref".into()));
    let query = opts.into_query().unwrap();
    let reader = CsvTupleReader::new(query.schema(Rel::R).clone(), query.schema(Rel::S).clone());

    let input = "\
# orders and payments
R,100,1001,25.0
R,150,1002,14.5
S,200,1001,25.0
S,250,1003,9.9
R,300,1003,9.9
S,90000,1002,14.5
";
    let tuples = reader.read_all(input.as_bytes()).unwrap();
    assert_eq!(tuples.len(), 6);

    let mut engine = BicliqueEngine::new(query.config().clone()).unwrap();
    engine.capture_results();
    let punct = engine.config().punctuation_interval_ms;
    let mut next_punct = punct;
    let mut last = 0;
    for t in &tuples {
        query.validate(t).unwrap();
        while next_punct <= t.ts() {
            engine.punctuate(next_punct).unwrap();
            next_punct += punct;
        }
        engine.ingest(t, t.ts()).unwrap();
        last = t.ts();
    }
    engine.punctuate(last + punct).unwrap();
    engine.flush().unwrap();

    let mut writer = ResultWriter::new(Vec::new());
    for r in engine.take_captured() {
        writer.write(&r).unwrap();
    }
    assert_eq!(writer.written(), 2, "1001 and 1003 match; 1002 is outside the window");
    let text = String::from_utf8(writer.finish().unwrap()).unwrap();
    assert!(text.contains("1001"));
    assert!(text.contains("1003"));
    assert!(!text.lines().any(|l| l.contains("1002")), "{text}");
}

#[test]
fn band_join_through_cli_options() {
    let opts = parse_args(&argv(
        "--r-schema bids:price:float --s-schema asks:price:float \
         --on-band price=price:0.5 --window-ms 1000 --joiners 2x2",
    ))
    .unwrap();
    let query = opts.into_query().unwrap();
    let reader = CsvTupleReader::new(query.schema(Rel::R).clone(), query.schema(Rel::S).clone());
    let tuples = reader.read_all("R,10,100.0\nS,20,100.4\nS,30,101.0\n".as_bytes()).unwrap();
    let mut engine = BicliqueEngine::new(query.config().clone()).unwrap();
    engine.capture_results();
    for t in &tuples {
        engine.ingest(t, t.ts()).unwrap();
    }
    engine.punctuate(100).unwrap();
    engine.flush().unwrap();
    let results = engine.take_captured();
    assert_eq!(results.len(), 1, "only |100.0-100.4| <= 0.5 matches");
}

#[test]
fn malformed_input_is_reported_not_joined() {
    let opts = parse_args(&argv("--r-schema o:v:int --s-schema p:w:int --on-equal v=w")).unwrap();
    let query = opts.into_query().unwrap();
    let reader = CsvTupleReader::new(query.schema(Rel::R).clone(), query.schema(Rel::S).clone());
    let err = reader.read_all("R,1,5\nS,2,oops\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("line 2"));
}
