//! Market matching: a band join of bids against asks on the live
//! threaded runtime.
//!
//! ```text
//! cargo run --release --example trading_band_join
//! ```
//!
//! Bids (R) and asks (S) stream in; a pair matches when the prices are
//! within the band. Non-equi predicates cannot be hash-routed, so the
//! engine uses random routing — store each tuple on one unit of its
//! side, broadcast the join copy to the opposite side — which is exactly
//! the workload class the join-biclique model exists to serve.

use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::exec::{Pipeline, PipelineConfig};
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::tuple::Tuple;
use bistream::types::window::WindowSpec;
use bistream::workload::arrival::ArrivalProcess;
use bistream::workload::keys::KeyDist;
use bistream::workload::source::StreamSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = EngineConfig {
        r_joiners: 3,
        s_joiners: 3,
        // Match when |bid − ask| ≤ 2 price ticks.
        predicate: JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 2.0 },
        window: WindowSpec::sliding(5_000),
        routing: RoutingStrategy::Random,
        archive_period_ms: 250,
        punctuation_interval_ms: 10,
        ordering: true,
        seed: 42,
        batch_size: 1,
        adaptive: Default::default(),
    };
    let pipeline = Pipeline::launch(PipelineConfig::new(engine))?;

    // Price processes around a common key universe of 500 ticks.
    let mut bids = StreamSource::new(
        Rel::R,
        ArrivalProcess::Poisson { rate: 2_000.0 },
        KeyDist::Zipf { n: 500, theta: 0.6 },
        0,
        1,
    );
    let mut asks = StreamSource::new(
        Rel::S,
        ArrivalProcess::Poisson { rate: 2_000.0 },
        KeyDist::Zipf { n: 500, theta: 0.6 },
        0,
        2,
    );

    // One second of market traffic, stamped with pipeline wall time so
    // latency is measured end to end.
    for _ in 0..2_000 {
        let now = pipeline.now();
        let bid = bids.next_tuple();
        let ask = asks.next_tuple();
        pipeline.ingest(&Tuple::new(Rel::R, now, vec![bid.get(0).unwrap().clone()]))?;
        pipeline.ingest(&Tuple::new(Rel::S, now, vec![ask.get(0).unwrap().clone()]))?;
    }
    std::thread::sleep(std::time::Duration::from_millis(100));

    let report = pipeline.finish()?;
    println!("ingested      : {}", report.snapshot.ingested);
    println!("matches       : {}", report.snapshot.results);
    println!(
        "copies/tuple  : {:.1}  (random routing: 1 store + 3 join copies)",
        report.snapshot.copies_per_tuple()
    );
    println!(
        "latency p50/p95/p99: {} / {} / {} ms",
        report.snapshot.latency.p50, report.snapshot.latency.p95, report.snapshot.latency.p99
    );
    println!("elapsed       : {} ms", report.elapsed_ms);
    for (i, j) in report.joiners.iter().enumerate() {
        println!(
            "unit {i}: stored {} probed {} candidates {} results {}",
            j.stored, j.probes, j.candidates, j.results
        );
    }
    Ok(())
}
