//! Quickstart: a windowed equi-join on a 2×2 biclique in a dozen lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the in-process engine, feeds a few order/payment tuples, and
//! prints every join result.

use bistream::core::config::EngineConfig;
use bistream::core::engine::BicliqueEngine;
use bistream::types::rel::Rel;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 R-joiners × 2 S-joiners, equi-join on attribute 0, 10 s sliding
    // window, content-sensitive (hash) routing, ordering protocol on.
    let mut engine = BicliqueEngine::new(EngineConfig::default_equi())?;
    engine.capture_results();

    // R = orders(order_id, amount); S = payments(order_id, amount_paid).
    let orders = [(1_001, 25.0), (1_002, 14.5), (1_003, 99.9)];
    let payments = [
        (1_002, 14.5),
        (1_001, 25.0),
        (1_777, 1.0), // no matching order
    ];

    let mut now = 0;
    for (id, amount) in orders {
        now += 10;
        let t = Tuple::new(Rel::R, now, vec![Value::Int(id), Value::Float(amount)]);
        engine.ingest(&t, now)?;
    }
    for (id, paid) in payments {
        now += 10;
        let t = Tuple::new(Rel::S, now, vec![Value::Int(id), Value::Float(paid)]);
        engine.ingest(&t, now)?;
    }

    // The ordering protocol releases buffered tuples on punctuations.
    engine.punctuate(now + 20)?;

    for result in engine.take_captured() {
        println!("matched: {result}");
    }
    let stats = engine.stats();
    println!(
        "\ningested {} tuples, emitted {} results, {} copies/tuple",
        stats.ingested,
        stats.results,
        stats.copies_per_tuple()
    );
    Ok(())
}
