//! A three-way stream join as a cascade of bicliques: orders ⋈ shipments
//! ⋈ delivery-confirmations.
//!
//! ```text
//! cargo run --example supply_chain_3way
//! ```
//!
//! Multi-way joins decompose into pipelined binary joins, each running
//! its own independently scalable biclique: stage 1 matches orders (A)
//! with shipments (B) on the order id; the flattened composites feed
//! stage 2, matching on the shipment's tracking number against the
//! confirmation stream (C).

use bistream::core::cascade::CascadeJoin;
use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;

fn stage(predicate: JoinPredicate) -> EngineConfig {
    EngineConfig {
        r_joiners: 2,
        s_joiners: 2,
        predicate,
        window: WindowSpec::sliding(30_000),
        routing: RoutingStrategy::Hash,
        archive_period_ms: 1_000,
        punctuation_interval_ms: 20,
        ordering: true,
        seed: 11,
        batch_size: 1,
        adaptive: Default::default(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A = orders(order_id, item)         → stage-1 R side
    // B = shipments(order_id, tracking)  → stage-1 S side
    // Composite = [order_id, item, order_id, tracking]; tracking = idx 3.
    // C = confirmations(tracking)        → stage-2 S side
    let stage1 = stage(JoinPredicate::Equi { r_attr: 0, s_attr: 0 });
    let stage2 = stage(JoinPredicate::Equi { r_attr: 3, s_attr: 0 });
    let mut cascade = CascadeJoin::new(stage1, stage2, 2)?;

    let orders = [(10, 500_i64, "keyboard"), (20, 501, "monitor"), (30, 502, "cable")];
    let shipments = [(40, 500_i64, 9_001_i64), (50, 502, 9_002)]; // 501 never ships
    let confirmations = [(60, 9_001_i64), (70, 9_777)]; // 9_002 never confirms

    for (ts, id, item) in orders {
        let t = Tuple::new(Rel::R, ts, vec![Value::Int(id), Value::Str(item.into())]);
        cascade.ingest_a(&t, ts)?;
    }
    for (ts, id, tracking) in shipments {
        let t = Tuple::new(Rel::S, ts, vec![Value::Int(id), Value::Int(tracking)]);
        cascade.ingest_b(&t, ts)?;
    }
    cascade.punctuate(55)?;
    for (ts, tracking) in confirmations {
        let t = Tuple::new(Rel::S, ts, vec![Value::Int(tracking)]);
        cascade.ingest_c(&t, ts)?;
    }
    cascade.punctuate(100)?;
    cascade.flush(100)?;

    let results = cascade.take_results();
    println!("confirmed deliveries: {}", results.len());
    for r in &results {
        let item = r.r.get(1).unwrap();
        let order = r.r.get(0).unwrap();
        let tracking = r.s.get(0).unwrap();
        println!("  order {order} ({item}) confirmed via tracking {tracking}");
    }
    assert_eq!(results.len(), 1, "only order 500 ships AND confirms");
    Ok(())
}
