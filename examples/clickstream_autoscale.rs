//! Click-stream matching under a varying rate, with the elastic cluster
//! scaling joiners automatically — the thesis's headline scenario in
//! miniature (one simulated "hour" in a second or two of wall time).
//!
//! ```text
//! cargo run --release --example clickstream_autoscale
//! ```
//!
//! Impressions (R) are joined with clicks (S) on the ad id over a
//! 10-minute window while the input rate steps 300 → 400 → 200 → 300
//! tuples/second; a Kubernetes-style Horizontal Pod Autoscaler targets
//! 80 % mean CPU per side with 1–3 joiners. The printed timeline shows
//! pods being added under load and retired after the stabilisation
//! window — with zero state migration.

use bistream::cluster::{CostModel, HpaConfig};
use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::engine::BicliqueEngine;
use bistream::core::sim::{run_dynamic_scaling, SimConfig, TupleFeed};
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::time::{Ts, MINUTE};
use bistream::types::tuple::Tuple;
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;
use bistream::workload::schedule::RateSchedule;

/// Ad impressions and clicks following the stepping rate profile.
struct ClickFeed {
    schedule: RateSchedule,
    next: (f64, f64),
    ad: i64,
    until: Ts,
}

impl TupleFeed for ClickFeed {
    fn peek_ts(&self) -> Option<Ts> {
        let ts = self.next.0.min(self.next.1) as Ts;
        (ts < self.until).then_some(ts)
    }

    fn next_tuple(&mut self) -> Option<Tuple> {
        let ts = self.peek_ts()?;
        let rel = if self.next.0 <= self.next.1 { Rel::R } else { Rel::S };
        let gap = 1_000.0 / self.schedule.rate_at(ts);
        match rel {
            Rel::R => self.next.0 += gap,
            Rel::S => self.next.1 += gap,
        }
        let ad_id = (self.ad / 2) % 100_000;
        self.ad += 1;
        Some(Tuple::new(rel, ts, vec![Value::Int(ad_id)]))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let duration = 60 * MINUTE;
    let engine_cfg = EngineConfig {
        r_joiners: 1,
        s_joiners: 1,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(10 * MINUTE),
        routing: RoutingStrategy::Random,
        archive_period_ms: 30_000,
        punctuation_interval_ms: 200,
        ordering: true,
        seed: 7,
        batch_size: 1,
        adaptive: Default::default(),
    };
    let engine = BicliqueEngine::builder(engine_cfg)
        .cost_model(CostModel::thesis_operating_point())
        .build()?;

    let sim = SimConfig {
        duration_ms: duration,
        sample_interval_ms: 5 * MINUTE,
        scale_r: true,
        scale_s: true,
        // Pods boot in ~15 s on the thesis cluster (image pull + JVM).
        pod_startup_delay_ms: 15_000,
        ..Default::default()
    };
    let mut feed = ClickFeed {
        schedule: RateSchedule::thesis_profile(),
        next: (0.0, 0.0),
        ad: 0,
        until: duration,
    };
    let out = run_dynamic_scaling(engine, &mut feed, HpaConfig::thesis_cpu(), &sim)?;

    println!("t(min)  rate(t/s)  R-pods  S-pods  R-cpu%  results");
    for s in &out.samples {
        println!(
            "{:>6}  {:>9.0}  {:>6}  {:>6}  {:>6.0}  {:>8}",
            s.t_ms / MINUTE,
            s.ingest_rate / 2.0,
            s.r_replicas,
            s.s_replicas,
            s.r_cpu * 100.0,
            s.results
        );
    }
    println!("\nscale events:");
    for (t, side, before, after) in &out.scale_events {
        println!("  t={:>4.1}min  side {side}: {before} -> {after}", *t as f64 / MINUTE as f64);
    }
    Ok(())
}
