//! The tuple-ordering protocol, demonstrated: run the same stream through
//! an adversarially shuffled (but pairwise-FIFO) network with the
//! order-consistent protocol ON and OFF, and compare against the exact
//! reference join.
//!
//! ```text
//! cargo run --example ordering_demo
//! ```
//!
//! With the protocol off, out-of-order arrival of the store and join
//! copies produces both *missed* results (probe arrives before the
//! matching store — Fig. 8(c) of the source text) and *duplicated*
//! results (both sides see store-before-probe — Fig. 8(d)). With the
//! protocol on, every joiner processes its messages as a subsequence of
//! one global order and the output is exactly-once.

use bistream::core::config::{EngineConfig, RoutingStrategy};
use bistream::core::delivery::DeliveryMode;
use bistream::core::engine::BicliqueEngine;
use bistream::types::predicate::JoinPredicate;
use bistream::types::rel::Rel;
use bistream::types::tuple::{JoinResult, Tuple};
use bistream::types::value::Value;
use bistream::types::window::WindowSpec;
use std::collections::HashMap;

fn stream(n: usize) -> Vec<Tuple> {
    let mut tuples = Vec::new();
    let mut state = 0x5EED_u64 | 1;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let rel = if state & 1 == 0 { Rel::R } else { Rel::S };
        let key = ((state >> 33) % 25) as i64;
        tuples.push(Tuple::new(rel, (i as u64) * 5, vec![Value::Int(key)]));
    }
    tuples
}

fn run(tuples: &[Tuple], ordering: bool) -> Vec<(u64, Vec<Value>, u64, Vec<Value>)> {
    let mut cfg = EngineConfig {
        r_joiners: 3,
        s_joiners: 3,
        predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window: WindowSpec::sliding(1_000),
        routing: RoutingStrategy::Random,
        archive_period_ms: 100,
        punctuation_interval_ms: 50,
        ordering,
        seed: 3,
        batch_size: 1,
        adaptive: Default::default(),
    };
    cfg.ordering = ordering;
    let mut engine = BicliqueEngine::builder(cfg)
        .routers(2)
        .delivery(DeliveryMode::Shuffled { seed: 0xBAD })
        .manual_pump()
        .build()
        .expect("valid");
    engine.capture_results();
    let mut next_punct = 50;
    for t in tuples {
        if t.ts() >= next_punct {
            engine.punctuate(next_punct).unwrap();
            engine.pump().unwrap();
            next_punct += 50;
        }
        engine.ingest(t, t.ts()).unwrap();
    }
    engine.punctuate(next_punct).unwrap();
    engine.pump().unwrap();
    engine.flush().unwrap();
    engine.take_captured().iter().map(JoinResult::identity).collect()
}

fn main() {
    let tuples = stream(3_000);

    // Exact reference join.
    let mut expect: HashMap<_, i64> = HashMap::new();
    for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
        for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
            if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= 1_000 {
                *expect.entry(JoinResult::of(a.clone(), b.clone()).identity()).or_default() += 1;
            }
        }
    }
    let total: i64 = expect.values().sum();
    println!("reference join: {total} results\n");

    for ordering in [false, true] {
        let got = run(&tuples, ordering);
        let mut remaining = expect.clone();
        let mut duplicated = 0;
        for g in &got {
            match remaining.get_mut(g) {
                Some(c) if *c > 0 => *c -= 1,
                _ => duplicated += 1,
            }
        }
        let missed: i64 = remaining.values().sum();
        println!(
            "protocol {}: emitted {:>5}  missed {:>3}  duplicated {:>3}   {}",
            if ordering { "ON " } else { "OFF" },
            got.len(),
            missed,
            duplicated,
            if missed == 0 && duplicated == 0 {
                "✓ exactly-once"
            } else {
                "✗ corrupted output"
            }
        );
    }
}
