//! Argument parsing and plumbing for the `bistream` command-line tool.
//!
//! The CLI joins two streams read from a line-oriented file (format of
//! [`bistream_workload::io`]) and writes results to a file or stdout:
//!
//! ```text
//! bistream --r-schema 'orders:id:int,amount:float' \
//!          --s-schema 'payments:ref:int,paid:float' \
//!          --on-equal id=ref --window-ms 60000 \
//!          --input stream.csv --output matches.txt
//! ```
//!
//! Kept in a library module (rather than inline in `main`) so the parsing
//! rules are unit-testable.

use bistream_core::config::{AdaptiveTuning, RoutingStrategy};
use bistream_core::exec::Backend;
use bistream_core::query::{JoinQuery, QueryBuilder};
use bistream_types::error::{Error, Result};
use bistream_types::predicate::CmpOp;
use bistream_types::schema::Schema;
use bistream_types::slo::SloSpec;
use bistream_types::value::ValueType;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// R-side schema.
    pub r_schema: Schema,
    /// S-side schema.
    pub s_schema: Schema,
    /// The join condition, unresolved.
    pub condition: CliCondition,
    /// Window in ms (`None` = full history).
    pub window_ms: Option<u64>,
    /// Joiners per side.
    pub joiners: (usize, usize),
    /// Routing override.
    pub routing: Option<RoutingStrategy>,
    /// Adaptive-routing tuning cadence in punctuation ticks
    /// (`--adaptive-tune-puncts`, only meaningful with
    /// `--routing adaptive[:D]`).
    pub adaptive_tune_puncts: Option<u32>,
    /// Adaptive-routing hot-key threshold in parts-per-million of the
    /// observed stream (`--adaptive-hot-ppm`).
    pub adaptive_hot_ppm: Option<u32>,
    /// Tuples per router→joiner frame (1 = per-tuple framing).
    pub batch_size: usize,
    /// Input path (`-` = stdin).
    pub input: String,
    /// Output path (`-` = stdout).
    pub output: String,
    /// SLO: p99 end-to-end latency ceiling in ms (`--slo-p99-ms`).
    pub slo_p99_ms: Option<u64>,
    /// SLO: ingest-throughput floor in tuples/s (`--slo-min-rate`).
    pub slo_min_rate: Option<f64>,
    /// Where to write the flight-recorder bundle on an SLO breach
    /// (`--slo-bundle`).
    pub slo_bundle: Option<String>,
    /// Execution substrate (`--backend sim|broker|sharded`).
    pub backend: CliBackend,
}

/// Which execution substrate runs the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CliBackend {
    /// The deterministic in-process engine driven on virtual time from
    /// the tuple timestamps (the default, and the only mode where
    /// `--window-ms` and the SLO grades are exact).
    #[default]
    Sim,
    /// The live threaded pipeline on the wrapped execution backend
    /// (broker queues or the sharded ring runtime); tuples are re-stamped
    /// with wall-clock arrival time.
    Live(Backend),
}

/// A join condition as written on the command line.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCondition {
    /// `--on-equal a=b`
    Equal(String, String),
    /// `--on-band a=b:eps`
    Band(String, String, f64),
    /// `--on-theta a<b` etc.
    Theta(String, CmpOp, String),
    /// `--cross`
    Cross,
}

/// Parse `name:attr:type,attr:type,…` into a schema.
pub fn parse_schema(spec: &str) -> Result<Schema> {
    let (name, rest) = spec
        .split_once(':')
        .ok_or_else(|| Error::Config(format!("schema spec `{spec}` needs `name:attrs…`")))?;
    let mut attrs = Vec::new();
    for field in rest.split(',') {
        let (attr, ty) = field
            .split_once(':')
            .ok_or_else(|| Error::Config(format!("attribute `{field}` needs `name:type`")))?;
        let ty = match ty.trim() {
            "int" | "i64" => ValueType::Int,
            "float" | "f64" => ValueType::Float,
            "str" | "string" => ValueType::Str,
            "bool" => ValueType::Bool,
            other => return Err(Error::Config(format!("unknown type `{other}`"))),
        };
        attrs.push((attr.trim(), ty));
    }
    Schema::new(name.trim(), attrs)
}

/// Parse a theta condition like `a<b`, `a>=b`, `a!=b`.
pub fn parse_theta(spec: &str) -> Result<(String, CmpOp, String)> {
    for (symbol, op) in [
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("!=", CmpOp::Ne),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
    ] {
        if let Some((l, r)) = spec.split_once(symbol) {
            return Ok((l.trim().to_owned(), op, r.trim().to_owned()));
        }
    }
    Err(Error::Config(format!("theta condition `{spec}` needs one of < <= > >= !=")))
}

/// Parse the full argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions> {
    let mut r_schema = None;
    let mut s_schema = None;
    let mut condition = None;
    let mut window_ms = Some(10_000u64);
    let mut joiners = (2usize, 2usize);
    let mut routing = None;
    let mut adaptive_tune_puncts = None;
    let mut adaptive_hot_ppm = None;
    let mut batch_size = 1usize;
    let mut input = "-".to_owned();
    let mut output = "-".to_owned();
    let mut slo_p99_ms = None;
    let mut slo_min_rate = None;
    let mut slo_bundle = None;
    let mut backend = CliBackend::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String> {
            it.next().cloned().ok_or_else(|| Error::Config(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--r-schema" => r_schema = Some(parse_schema(&value("--r-schema")?)?),
            "--s-schema" => s_schema = Some(parse_schema(&value("--s-schema")?)?),
            "--on-equal" => {
                let v = value("--on-equal")?;
                let (l, r) = v
                    .split_once('=')
                    .ok_or_else(|| Error::Config("--on-equal needs `a=b`".into()))?;
                condition = Some(CliCondition::Equal(l.trim().into(), r.trim().into()));
            }
            "--on-band" => {
                let v = value("--on-band")?;
                let (pair, eps) = v
                    .rsplit_once(':')
                    .ok_or_else(|| Error::Config("--on-band needs `a=b:eps`".into()))?;
                let (l, r) = pair
                    .split_once('=')
                    .ok_or_else(|| Error::Config("--on-band needs `a=b:eps`".into()))?;
                let eps: f64 =
                    eps.parse().map_err(|e| Error::Config(format!("bad band `{eps}`: {e}")))?;
                condition = Some(CliCondition::Band(l.trim().into(), r.trim().into(), eps));
            }
            "--on-theta" => {
                let (l, op, r) = parse_theta(&value("--on-theta")?)?;
                condition = Some(CliCondition::Theta(l, op, r));
            }
            "--cross" => condition = Some(CliCondition::Cross),
            "--window-ms" => {
                window_ms = Some(
                    value("--window-ms")?
                        .parse()
                        .map_err(|e| Error::Config(format!("bad window: {e}")))?,
                )
            }
            "--full-history" => window_ms = None,
            "--joiners" => {
                let v = value("--joiners")?;
                let (a, b) = v
                    .split_once('x')
                    .ok_or_else(|| Error::Config("--joiners needs `NxM`".into()))?;
                joiners = (
                    a.parse().map_err(|e| Error::Config(format!("bad joiners: {e}")))?,
                    b.parse().map_err(|e| Error::Config(format!("bad joiners: {e}")))?,
                );
            }
            "--routing" => {
                routing = Some(match value("--routing")?.as_str() {
                    "random" => RoutingStrategy::Random,
                    "hash" => RoutingStrategy::Hash,
                    s if s.starts_with("contrand:") => RoutingStrategy::ContRand {
                        subgroups: s["contrand:".len()..]
                            .parse()
                            .map_err(|e| Error::Config(format!("bad subgroups: {e}")))?,
                    },
                    "adaptive" => RoutingStrategy::Adaptive { subgroups: 2 },
                    s if s.starts_with("adaptive:") => RoutingStrategy::Adaptive {
                        subgroups: s["adaptive:".len()..]
                            .parse()
                            .map_err(|e| Error::Config(format!("bad subgroups: {e}")))?,
                    },
                    other => return Err(Error::Config(format!("unknown routing `{other}`"))),
                })
            }
            "--adaptive-tune-puncts" => {
                adaptive_tune_puncts = Some(
                    value("--adaptive-tune-puncts")?
                        .parse()
                        .map_err(|e| Error::Config(format!("bad tuning cadence: {e}")))?,
                )
            }
            "--adaptive-hot-ppm" => {
                adaptive_hot_ppm = Some(
                    value("--adaptive-hot-ppm")?
                        .parse()
                        .map_err(|e| Error::Config(format!("bad hot threshold: {e}")))?,
                )
            }
            "--batch-size" => {
                batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| Error::Config(format!("bad batch size: {e}")))?
            }
            "--input" | "-i" => input = value("--input")?,
            "--output" | "-o" => output = value("--output")?,
            "--slo-p99-ms" => {
                slo_p99_ms = Some(
                    value("--slo-p99-ms")?
                        .parse()
                        .map_err(|e| Error::Config(format!("bad p99 ceiling: {e}")))?,
                )
            }
            "--slo-min-rate" => {
                slo_min_rate = Some(
                    value("--slo-min-rate")?
                        .parse()
                        .map_err(|e| Error::Config(format!("bad rate floor: {e}")))?,
                )
            }
            "--slo-bundle" => slo_bundle = Some(value("--slo-bundle")?),
            "--backend" => {
                backend = match value("--backend")?.as_str() {
                    "sim" => CliBackend::Sim,
                    "broker" => CliBackend::Live(Backend::Broker),
                    "sharded" => CliBackend::Live(Backend::Sharded),
                    other => {
                        return Err(Error::Config(format!(
                            "unknown backend `{other}` (sim, broker or sharded)"
                        )))
                    }
                }
            }
            other => return Err(Error::Config(format!("unknown flag `{other}` (see --help)"))),
        }
    }

    Ok(CliOptions {
        r_schema: r_schema.ok_or_else(|| Error::Config("--r-schema is required".into()))?,
        s_schema: s_schema.ok_or_else(|| Error::Config("--s-schema is required".into()))?,
        condition: condition.ok_or_else(|| {
            Error::Config(
                "a condition is required (--on-equal/--on-band/--on-theta/--cross)".into(),
            )
        })?,
        window_ms,
        joiners,
        routing,
        adaptive_tune_puncts,
        adaptive_hot_ppm,
        batch_size,
        input,
        output,
        slo_p99_ms,
        slo_min_rate,
        slo_bundle,
        backend,
    })
}

impl CliOptions {
    /// The SLO spec assembled from the `--slo-*` flags, or `None` when no
    /// objective was requested (the run is then not graded at all).
    pub fn slo_spec(&self) -> Option<SloSpec> {
        if self.slo_p99_ms.is_none() && self.slo_min_rate.is_none() {
            return None;
        }
        let mut spec = SloSpec::new();
        if let Some(ms) = self.slo_p99_ms {
            spec = spec.p99_latency_ms(ms);
        }
        if let Some(tps) = self.slo_min_rate {
            spec = spec.min_ingest_tps(tps);
        }
        Some(spec)
    }

    /// Resolve into a validated [`JoinQuery`].
    pub fn into_query(self) -> Result<JoinQuery> {
        let mut b = QueryBuilder::new(self.r_schema, self.s_schema)
            .joiners(self.joiners.0, self.joiners.1)
            .batch_size(self.batch_size);
        b = match &self.condition {
            CliCondition::Equal(l, r) => b.on_equal(l, r),
            CliCondition::Band(l, r, eps) => b.on_band(l, r, *eps),
            CliCondition::Theta(l, op, r) => b.on_theta(l, *op, r),
            CliCondition::Cross => b.cross(),
        };
        b = match self.window_ms {
            Some(ms) => b.window_ms(ms),
            None => b.full_history(),
        };
        if let Some(r) = self.routing {
            b = b.routing(r);
        }
        if self.adaptive_tune_puncts.is_some() || self.adaptive_hot_ppm.is_some() {
            let mut tuning = AdaptiveTuning::default();
            if let Some(n) = self.adaptive_tune_puncts {
                tuning.tune_every_puncts = n;
            }
            if let Some(ppm) = self.adaptive_hot_ppm {
                tuning.hot_min_share_ppm = ppm;
            }
            b = b.adaptive_tuning(tuning);
        }
        b.build()
    }
}

/// The usage text for `--help`.
pub const USAGE: &str = "\
bistream — windowed stream join over a file of tuples

USAGE:
  bistream --r-schema NAME:ATTR:TYPE[,…] --s-schema NAME:ATTR:TYPE[,…]
           (--on-equal A=B | --on-band A=B:EPS | --on-theta 'A<B' | --cross)
           [--window-ms MS | --full-history] [--joiners NxM]
           [--routing random|hash|contrand:D|adaptive[:D]] [--batch-size N]
           [--adaptive-tune-puncts N] [--adaptive-hot-ppm PPM]
           [--backend sim|broker|sharded]
           [--input FILE] [--output FILE]
           [--slo-p99-ms MS] [--slo-min-rate TPS] [--slo-bundle FILE]

ROUTING:
  random          store random own-side unit, broadcast join copies.
  hash            content-sensitive, 2 copies/tuple (skew-fragile).
  contrand:D      paper's ContRand with D subgroups per side.
  adaptive[:D]    self-tuning ContRand starting at D subgroups (default
                  2): hot keys (detected by in-router sketches) fan out
                  wide, cold keys stay content-sensitive, and D re-tunes
                  online; every strategy switch is fenced on punctuation
                  boundaries. Equi joins only.
                  --adaptive-tune-puncts sets the tuning cadence in
                  punctuation ticks (default 4); --adaptive-hot-ppm the
                  hot-key share threshold in parts-per-million of the
                  observed stream (default 20000 = 2%).

BACKENDS:
  sim (default)   deterministic in-process engine on virtual time from
                  the tuple timestamps — exact windows, exact SLO grades.
  broker          live threaded pipeline over broker queues.
  sharded         live lock-free sharded runtime (one worker per unit
                  over bounded ring queues) — the throughput backend.
                  CAVEAT: core pinning (pin_to_core) is currently a
                  best-effort NO-OP — no CPU-affinity syscall crate is
                  vendored, so worker threads are named per shard but
                  placed by the OS scheduler. A one-time ConfigWarning
                  journal event records this at launch.
  The live backends replay flat-out and re-stamp tuples with wall-clock
  arrival time, so --window-ms is interpreted on the wall clock.

SLO GRADING (virtual time, from tuple timestamps):
  --slo-p99-ms MS     p99 result-latency ceiling; --slo-min-rate TPS an
  activity-gated ingest floor. A breach prints the verdict, writes the
  flight-recorder bundle to --slo-bundle (if given) and exits 3.

INPUT FORMAT (one tuple per line):
  R,<ts-ms>,<attr0>,<attr1>,…        # `\\N` is null, `#` starts a comment
  S,<ts-ms>,<attr0>,…

TYPES: int, float, str, bool
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_schema_spec() {
        let s = parse_schema("orders:id:int,amount:float,who:str").unwrap();
        assert_eq!(s.name(), "orders");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attributes()[1].ty, ValueType::Float);
        assert!(parse_schema("noattrs").is_err());
        assert!(parse_schema("x:id:decimal").is_err());
    }

    #[test]
    fn parses_theta_specs() {
        assert_eq!(parse_theta("a<b").unwrap(), ("a".into(), CmpOp::Lt, "b".into()));
        assert_eq!(parse_theta("a >= b").unwrap(), ("a".into(), CmpOp::Ge, "b".into()));
        assert_eq!(parse_theta("x!=y").unwrap(), ("x".into(), CmpOp::Ne, "y".into()));
        assert!(parse_theta("a~b").is_err());
    }

    #[test]
    fn parses_full_command_line() {
        let opts = parse_args(&argv(
            "--r-schema o:id:int --s-schema p:ref:int --on-equal id=ref \
             --window-ms 5000 --joiners 3x2 --routing contrand:2 --batch-size 32 \
             -i in.csv -o out.txt",
        ))
        .unwrap();
        assert_eq!(opts.condition, CliCondition::Equal("id".into(), "ref".into()));
        assert_eq!(opts.window_ms, Some(5_000));
        assert_eq!(opts.joiners, (3, 2));
        assert_eq!(opts.routing, Some(RoutingStrategy::ContRand { subgroups: 2 }));
        assert_eq!(opts.batch_size, 32);
        assert_eq!(opts.input, "in.csv");
        assert_eq!(opts.output, "out.txt");
        let q = opts.into_query().unwrap();
        assert_eq!(q.config().r_joiners, 3);
        assert_eq!(q.config().batch_size, 32);
    }

    #[test]
    fn adaptive_routing_flag_with_and_without_subgroups() {
        let base = "--r-schema o:id:int --s-schema p:ref:int --on-equal id=ref";
        let opts = parse_args(&argv(&format!("{base} --routing adaptive"))).unwrap();
        assert_eq!(opts.routing, Some(RoutingStrategy::Adaptive { subgroups: 2 }));
        let opts = parse_args(&argv(&format!("{base} --joiners 4x4 --routing adaptive:4"))).unwrap();
        assert_eq!(opts.routing, Some(RoutingStrategy::Adaptive { subgroups: 4 }));
        let q = opts.into_query().unwrap();
        assert_eq!(q.config().routing, RoutingStrategy::Adaptive { subgroups: 4 });
        assert!(parse_args(&argv(&format!("{base} --routing adaptive:x"))).is_err());
    }

    #[test]
    fn adaptive_tuning_flags_flow_into_the_config() {
        let base = "--r-schema o:id:int --s-schema p:ref:int --on-equal id=ref \
                    --routing adaptive";
        let opts = parse_args(&argv(&format!(
            "{base} --adaptive-tune-puncts 7 --adaptive-hot-ppm 50000"
        )))
        .unwrap();
        assert_eq!(opts.adaptive_tune_puncts, Some(7));
        assert_eq!(opts.adaptive_hot_ppm, Some(50_000));
        let q = opts.into_query().unwrap();
        assert_eq!(q.config().adaptive.tune_every_puncts, 7);
        assert_eq!(q.config().adaptive.hot_min_share_ppm, 50_000);
        // Defaults survive when the flags are absent.
        let q = parse_args(&argv(base)).unwrap().into_query().unwrap();
        assert_eq!(q.config().adaptive, AdaptiveTuning::default());
        assert!(parse_args(&argv(&format!("{base} --adaptive-tune-puncts nope"))).is_err());
    }

    #[test]
    fn usage_documents_the_sharded_pinning_caveat() {
        // The pin_to_core no-op must be loud in --backend sharded help.
        assert!(USAGE.contains("pin_to_core"));
        assert!(USAGE.contains("NO-OP"));
        assert!(USAGE.contains("adaptive[:D]"));
    }

    #[test]
    fn band_and_cross_conditions() {
        let opts = parse_args(&argv("--r-schema o:v:float --s-schema p:w:float --on-band v=w:1.5"))
            .unwrap();
        assert_eq!(opts.condition, CliCondition::Band("v".into(), "w".into(), 1.5));
        assert!(opts.into_query().is_ok());

        let opts = parse_args(&argv("--r-schema o:v:int --s-schema p:w:int --cross")).unwrap();
        assert_eq!(opts.condition, CliCondition::Cross);
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse_args(&argv("--r-schema o:v:int")).is_err());
        assert!(
            parse_args(&argv("--r-schema o:v:int --s-schema p:w:int")).is_err(),
            "no condition"
        );
        assert!(parse_args(&argv("--bogus")).is_err());
    }

    #[test]
    fn slo_flags_build_a_spec() {
        let opts = parse_args(&argv(
            "--r-schema o:v:int --s-schema p:w:int --on-equal v=w \
             --slo-p99-ms 250 --slo-min-rate 100.5 --slo-bundle breach.json",
        ))
        .unwrap();
        assert_eq!(opts.slo_p99_ms, Some(250));
        assert_eq!(opts.slo_min_rate, Some(100.5));
        assert_eq!(opts.slo_bundle.as_deref(), Some("breach.json"));
        let spec = opts.slo_spec().expect("flags set");
        assert_eq!(spec.p99_latency_ms, Some(250));
        assert_eq!(spec.min_ingest_tps, Some(100.5));

        let opts =
            parse_args(&argv("--r-schema o:v:int --s-schema p:w:int --on-equal v=w")).unwrap();
        assert!(opts.slo_spec().is_none(), "no flags, no grading");
        assert!(parse_args(&argv(
            "--r-schema o:v:int --s-schema p:w:int --on-equal v=w --slo-p99-ms nope"
        ))
        .is_err());
    }

    #[test]
    fn backend_flag_selects_the_substrate() {
        let base = "--r-schema o:v:int --s-schema p:w:int --on-equal v=w";
        let opts = parse_args(&argv(base)).unwrap();
        assert_eq!(opts.backend, CliBackend::Sim, "sim is the default");
        let opts = parse_args(&argv(&format!("{base} --backend sharded"))).unwrap();
        assert_eq!(opts.backend, CliBackend::Live(Backend::Sharded));
        let opts = parse_args(&argv(&format!("{base} --backend broker"))).unwrap();
        assert_eq!(opts.backend, CliBackend::Live(Backend::Broker));
        let opts = parse_args(&argv(&format!("{base} --backend sim"))).unwrap();
        assert_eq!(opts.backend, CliBackend::Sim);
        assert!(parse_args(&argv(&format!("{base} --backend gpu"))).is_err());
    }

    #[test]
    fn full_history_flag() {
        let opts = parse_args(&argv(
            "--r-schema o:v:int --s-schema p:w:int --on-equal v=w --full-history",
        ))
        .unwrap();
        assert_eq!(opts.window_ms, None);
        let q = opts.into_query().unwrap();
        assert_eq!(q.config().window, bistream_types::window::WindowSpec::FullHistory);
    }
}
