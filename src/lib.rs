//! # BiStream-RS
//!
//! Facade crate re-exporting the full public API of the BiStream-RS
//! workspace — a from-scratch Rust reproduction of *"Scalable Distributed
//! Stream Join Processing"* (SIGMOD 2015): the **join-biclique** model for
//! parallel, elastic, windowed stream joins, together with every substrate
//! it depends on (an AMQP-style message broker, a chained in-memory index,
//! a simulated elastic cluster, workload generators) and the join-matrix
//! baseline it is evaluated against.
//!
//! See the individual crates for details:
//!
//! - [`types`] — tuples, predicates, windows, clocks.
//! - [`broker`] — in-process AMQP-model message broker.
//! - [`index`] — the chained in-memory index with Theorem-1 expiry.
//! - [`core`] — routers, joiners, ordering protocol, biclique topology,
//!   the threaded live runtime and the virtual-time simulator.
//! - [`matrix`] — the join-matrix (fragment-and-replicate) baseline.
//! - [`cluster`] — pods, resource metering and the HPA control loop.
//! - [`workload`] — seeded stream generators, rate schedules and file
//!   adapters.
//!
//! The [`cli`] module backs the `bistream` binary (file-in/file-out
//! windowed joins; see `bistream --help`).

pub mod cli;

pub use bistream_broker as broker;
pub use bistream_cluster as cluster;
pub use bistream_core as core;
pub use bistream_index as index;
pub use bistream_matrix as matrix;
pub use bistream_types as types;
pub use bistream_workload as workload;
