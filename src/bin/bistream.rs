//! The `bistream` command-line tool: join two streams read from a file
//! (or stdin) and write the matches to a file (or stdout).
//!
//! See `bistream --help`, [`bistream::cli`] for the flag grammar, and
//! `bistream_workload::io` for the line format.

use bistream::cli::{parse_args, CliBackend, USAGE};
use bistream::core::engine::BicliqueEngine;
use bistream::core::exec::{Pipeline, PipelineConfig};
use bistream::core::query::JoinQuery;
use bistream::types::recorder::RunHealth;
use bistream::types::registry::{Observability, Sampler};
use bistream::types::tuple::Tuple;
use bistream::types::watchdog::WatchdogConfig;
use bistream::workload::io::{CsvTupleReader, ResultWriter};
use std::io::{BufRead, BufReader, BufWriter, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        eprint!("{USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> Result<i32, Box<dyn std::error::Error>> {
    let opts = parse_args(args)?;
    let input_path = opts.input.clone();
    let output_path = opts.output.clone();
    let slo = opts.slo_spec();
    let bundle_path = opts.slo_bundle.clone();
    let backend = opts.backend;
    let query = opts.into_query()?;
    let reader = CsvTupleReader::new(
        query.schema(bistream::types::rel::Rel::R).clone(),
        query.schema(bistream::types::rel::Rel::S).clone(),
    );

    let input: Box<dyn BufRead> = if input_path == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        Box::new(BufReader::new(std::fs::File::open(&input_path)?))
    };
    let sink: Box<dyn Write> = if output_path == "-" {
        Box::new(BufWriter::new(std::io::stdout()))
    } else {
        Box::new(BufWriter::new(std::fs::File::create(&output_path)?))
    };
    let writer = ResultWriter::new(sink);

    if let CliBackend::Live(b) = backend {
        return run_live(b, &query, &reader, input, writer, slo, &bundle_path);
    }

    // Observability rides along only when an SLO was requested — the
    // journal and scrape series cost memory proportional to the run.
    let obs = slo.as_ref().map(|_| Observability::new());
    let mut engine = match &obs {
        Some(o) => {
            BicliqueEngine::builder(query.config().clone()).observability(o.clone()).build()?
        }
        None => BicliqueEngine::new(query.config().clone())?,
    };
    engine.capture_results();
    let punct_every = engine.config().punctuation_interval_ms;
    let mut sampler = obs.as_ref().map(|o| {
        let mut s = Sampler::new(o.registry.clone(), punct_every.max(1));
        s.force_sample(0);
        s
    });

    let mut writer = writer;
    let mut next_punct = punct_every;
    let mut last_ts = 0;
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let Some(tuple) = reader.parse_line(&line).map_err(|e| format!("line {}: {e}", i + 1))?
        else {
            continue;
        };
        query.validate(&tuple).map_err(|e| format!("line {}: {e}", i + 1))?;
        while next_punct <= tuple.ts() {
            engine.punctuate(next_punct)?;
            if let Some(s) = &mut sampler {
                s.maybe_sample(next_punct);
            }
            next_punct += punct_every;
        }
        last_ts = tuple.ts().max(last_ts);
        engine.ingest(&tuple, tuple.ts())?;
        for result in engine.take_captured() {
            writer.write(&result)?;
        }
    }
    engine.punctuate(last_ts + punct_every)?;
    engine.flush()?;
    for result in engine.take_captured() {
        writer.write(&result)?;
    }
    let written = writer.written();
    writer.finish()?;

    let snap = engine.stats();
    eprintln!(
        "ingested {} tuples, emitted {written} results ({:.1} copies/tuple)",
        snap.ingested,
        snap.copies_per_tuple()
    );

    // Grade the run when SLO flags were given: virtual-time scrapes
    // through the same engine the results came from. Breach ⇒ exit 3.
    if let (Some(obs), Some(sampler), Some(spec)) = (obs, sampler, slo) {
        let series = bistream::types::metrics::finalize_scrape_series(
            &obs.registry,
            last_ts + punct_every,
            sampler.into_series(),
        );
        let events = obs.journal.snapshot();
        let health = bistream::types::recorder::grade_run(
            Some(&spec),
            &WatchdogConfig::default(),
            &series,
            &events,
            &[],
        );
        return grade_health(&health, &bundle_path);
    }
    Ok(0)
}

/// Replay the input flat-out through the live threaded pipeline on the
/// chosen backend (broker queues or the sharded ring runtime). Live mode
/// joins on arrival time: the file's virtual timestamps are replaced with
/// the wall clock at ingest, and results are captured in memory until the
/// pipeline drains.
fn run_live(
    backend: bistream::core::exec::Backend,
    query: &JoinQuery,
    reader: &CsvTupleReader,
    input: Box<dyn BufRead>,
    mut writer: ResultWriter<Box<dyn Write>>,
    slo: Option<bistream::types::slo::SloSpec>,
    bundle_path: &Option<String>,
) -> Result<i32, Box<dyn std::error::Error>> {
    let mut cfg = PipelineConfig::new(query.config().clone());
    cfg.backend = backend;
    cfg.capture_results = true;
    cfg.slo = slo;
    let pipe = Pipeline::launch(cfg)?;
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let Some(tuple) = reader.parse_line(&line).map_err(|e| format!("line {}: {e}", i + 1))?
        else {
            continue;
        };
        query.validate(&tuple).map_err(|e| format!("line {}: {e}", i + 1))?;
        pipe.ingest(&Tuple::new(tuple.rel(), pipe.now(), tuple.values().to_vec()))?;
    }
    let report = pipe.finish()?;
    for result in &report.captured {
        writer.write(result)?;
    }
    let written = writer.written();
    writer.finish()?;
    eprintln!(
        "ingested {} tuples, emitted {written} results in {} ms ({:.0} tuples/s, {:.1} copies/tuple)",
        report.snapshot.ingested,
        report.elapsed_ms,
        report.snapshot.ingested as f64 / (report.elapsed_ms.max(1) as f64 / 1_000.0),
        report.snapshot.copies_per_tuple()
    );
    grade_health(&report.health, bundle_path)
}

/// Print the SLO and stall verdicts; on a breach write the
/// flight-recorder bundle (when a path was given) and exit 3.
fn grade_health(
    health: &RunHealth,
    bundle_path: &Option<String>,
) -> Result<i32, Box<dyn std::error::Error>> {
    if let Some(report) = &health.slo {
        eprintln!(
            "SLO: {} objective(s) over {} ms, availability {:.1}%",
            report.objectives.len(),
            report.elapsed_ms,
            report.availability_pct()
        );
        for alert in &report.alerts {
            eprintln!(
                "SLO ALERT {}: {} burned (fast {:.1}x, slow {:.1}x) at {} ms",
                alert.alert, alert.objective, alert.fast_burn, alert.slow_burn, alert.at_ms
            );
        }
    }
    for stall in &health.stalls {
        eprintln!(
            "STALL {}: {} frozen for {} ticks with {} buffered",
            stall.kind.label(),
            stall.unit,
            stall.ticks,
            stall.buffered
        );
    }
    if health.breached() {
        if let (Some(path), Some(bundle)) = (bundle_path, &health.bundle) {
            std::fs::write(path, bundle.to_json())?;
            eprintln!("flight-recorder bundle written to {path}");
        }
        return Ok(3);
    }
    Ok(0)
}
