//! The `bistream` command-line tool: join two streams read from a file
//! (or stdin) and write the matches to a file (or stdout).
//!
//! See `bistream --help`, [`bistream::cli`] for the flag grammar, and
//! `bistream_workload::io` for the line format.

use bistream::cli::{parse_args, USAGE};
use bistream::core::engine::BicliqueEngine;
use bistream::workload::io::{CsvTupleReader, ResultWriter};
use std::io::{BufRead, BufReader, BufWriter, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        eprint!("{USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args(args)?;
    let input_path = opts.input.clone();
    let output_path = opts.output.clone();
    let query = opts.into_query()?;
    let reader = CsvTupleReader::new(
        query.schema(bistream::types::rel::Rel::R).clone(),
        query.schema(bistream::types::rel::Rel::S).clone(),
    );

    let mut engine = BicliqueEngine::new(query.config().clone())?;
    engine.capture_results();
    let punct_every = engine.config().punctuation_interval_ms;

    let input: Box<dyn BufRead> = if input_path == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        Box::new(BufReader::new(std::fs::File::open(&input_path)?))
    };
    let sink: Box<dyn Write> = if output_path == "-" {
        Box::new(BufWriter::new(std::io::stdout()))
    } else {
        Box::new(BufWriter::new(std::fs::File::create(&output_path)?))
    };
    let mut writer = ResultWriter::new(sink);

    let mut next_punct = punct_every;
    let mut last_ts = 0;
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let Some(tuple) = reader.parse_line(&line).map_err(|e| format!("line {}: {e}", i + 1))?
        else {
            continue;
        };
        query.validate(&tuple).map_err(|e| format!("line {}: {e}", i + 1))?;
        while next_punct <= tuple.ts() {
            engine.punctuate(next_punct)?;
            next_punct += punct_every;
        }
        last_ts = tuple.ts().max(last_ts);
        engine.ingest(&tuple, tuple.ts())?;
        for result in engine.take_captured() {
            writer.write(&result)?;
        }
    }
    engine.punctuate(last_ts + punct_every)?;
    engine.flush()?;
    for result in engine.take_captured() {
        writer.write(&result)?;
    }
    let written = writer.written();
    writer.finish()?;

    let snap = engine.stats();
    eprintln!(
        "ingested {} tuples, emitted {written} results ({:.1} copies/tuple)",
        snap.ingested,
        snap.copies_per_tuple()
    );
    Ok(())
}
